"""Plan-evaluation throughput — batched compiled replay vs per-plan recursive replay.

The DRL-guided GA visits up to 10,000 plans per recommendation, so evaluated-plans-
per-second *is* Atlas's wall-clock cost.  This benchmark scores the same random plan
sample on the social-network testbed twice: once through the per-plan recursive
``DelayInjector`` path (``performance_engine="reference"``, ``evaluate`` plan by plan)
and once through ``QualityEvaluator.evaluate_batch`` on the compiled engine (dedup →
projection → one vectorized replay per API).  Both paths must agree exactly; the
batched path must be at least 5x faster.
"""

import time

import numpy as np

from _shared import run_once, social_testbed

from repro.analysis import format_table
from repro.cluster import MigrationPlan

#: Random candidate plans scored by both engines (distinct plans, like a GA sample).
N_PLANS = 400


def _random_plans(testbed, count: int, seed: int = 123):
    rng = np.random.default_rng(seed)
    components = testbed.application.component_names
    pins = testbed.preferences.pinned_placement
    plans = []
    for _ in range(count):
        offload_prob = rng.uniform(0.1, 0.9)
        vector = (rng.random(len(components)) < offload_prob).astype(int)
        plan = MigrationPlan.from_vector(components, [int(v) for v in vector])
        plans.append(plan.with_pinned(pins) if pins else plan)
    return plans


def test_eval_throughput(benchmark):
    testbed = social_testbed()
    plans = _random_plans(testbed, N_PLANS)

    def measure():
        reference = testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale,
            preferences=testbed.preferences,
            performance_engine="reference",
        )
        batched = testbed.atlas.build_evaluator(
            expected_scale=testbed.expected_scale,
            preferences=testbed.preferences,
            performance_engine="compiled",
        )
        start = time.perf_counter()
        reference_qualities = [reference.evaluate(plan) for plan in plans]
        reference_s = time.perf_counter() - start
        start = time.perf_counter()
        batched_qualities = batched.evaluate_batch(plans)
        batched_s = time.perf_counter() - start
        return {
            "reference_s": reference_s,
            "batched_s": batched_s,
            "reference_objectives": [q.objectives() for q in reference_qualities],
            "batched_objectives": [q.objectives() for q in batched_qualities],
        }

    result = run_once(benchmark, measure)
    reference_rate = N_PLANS / result["reference_s"]
    batched_rate = N_PLANS / result["batched_s"]
    speedup = batched_rate / reference_rate
    rows = [
        {
            "path": "per-plan recursive (DelayInjector)",
            "plans": N_PLANS,
            "seconds": round(result["reference_s"], 3),
            "plans_per_s": round(reference_rate, 1),
        },
        {
            "path": "batched compiled (evaluate_batch)",
            "plans": N_PLANS,
            "seconds": round(result["batched_s"], 3),
            "plans_per_s": round(batched_rate, 1),
        },
    ]
    print()
    print(format_table(rows, title="Plan-evaluation throughput (social-network testbed)"))
    print(f"speedup: {speedup:.1f}x")
    # Both engines must produce identical objective vectors for every plan.
    assert result["batched_objectives"] == result["reference_objectives"]
    assert speedup >= 5.0
