"""Figure 12 — performance-optimized plans from all seven methods."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure12_14_optimized_plans, format_table


def test_fig12_performance_optimized(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    rows = run_once(
        benchmark,
        lambda: figure12_14_optimized_plans(testbed, methods, objective="performance"),
    )
    print()
    print(format_table(rows, title="Figure 12: performance-optimized plans"))
    by_method = {row["method"]: row for row in rows}
    atlas = by_method["atlas"]["estimated_impact_factor"]
    # Atlas's performance-optimized plan has the lowest estimated impact among the
    # methods that optimize towards performance (the paper's headline comparison).
    for method in ("affinity-ga", "remap", "intma", "greedy-largest", "greedy-smallest"):
        assert atlas <= by_method[method]["estimated_impact_factor"] + 1e-6
