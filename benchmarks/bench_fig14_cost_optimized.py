"""Figure 14 — cost-optimized plans from all seven methods."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure12_14_optimized_plans, format_table


def test_fig14_cost_optimized(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    rows = run_once(
        benchmark,
        lambda: figure12_14_optimized_plans(testbed, methods, objective="cost", measure=False),
    )
    print()
    print(format_table(rows, title="Figure 14: cost-optimized plans"))
    by_method = {row["method"]: row for row in rows}
    atlas_cost = by_method["atlas"]["cost_per_day_usd"]
    # Atlas's cheapest plan is at least as cheap as every baseline's cheapest plan
    # (the paper reports ~11% cheaper than the affinity GA).
    cheapest_other = min(
        row["cost_per_day_usd"] for row in rows if row["method"] != "atlas"
    )
    assert atlas_cost <= cheapest_other * 1.05
