"""Figure 13 — availability-optimized plans from all seven methods."""

from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure12_14_optimized_plans, format_table


def test_fig13_availability_optimized(benchmark):
    testbed = social_testbed()
    methods = social_methods()
    rows = run_once(
        benchmark,
        lambda: figure12_14_optimized_plans(
            testbed, methods, objective="availability", measure=False
        ),
    )
    print()
    print(format_table(rows, title="Figure 13: availability-optimized plans"))
    by_method = {row["method"]: row for row in rows}
    atlas_disrupted = by_method["atlas"]["disrupted_apis"]
    # Atlas can always offer a plan with the fewest disrupted APIs.
    assert atlas_disrupted == min(row["disrupted_apis"] for row in rows)
    # And it never disrupts the single-plan baselines' level when they do disrupt.
    assert atlas_disrupted <= by_method["remap"]["disrupted_apis"]
