"""Figure 7 — delay injection approximates the post-migration latency distribution."""

import numpy as np
from _shared import run_once, social_methods, social_testbed

from repro.analysis import figure7_latency_distribution, format_mapping


def test_fig07_latency_distribution(benchmark):
    testbed = social_testbed()
    atlas = social_methods()["atlas"]
    result = run_once(
        benchmark,
        lambda: figure7_latency_distribution(testbed, atlas.recommendation, api="/homeTimeline"),
    )
    print()
    print(
        format_mapping(
            {
                "api": result["api"],
                "estimated_mean_ms": result["estimated_mean_ms"],
                "measured_mean_ms": result["measured_mean_ms"],
                "estimated_p95_ms": float(np.percentile(result["estimated_latencies_ms"], 95)),
                "measured_p95_ms": float(np.percentile(result["measured_latencies_ms"], 95)),
            },
            title="Figure 7: /homeTimeline latency distribution (estimate vs measured)",
        )
    )
    assert result["estimated_latencies_ms"] and result["measured_latencies_ms"]
    # The estimated mean should land in the same ballpark as the measured one.
    assert result["estimated_mean_ms"] == pytest_approx(result["measured_mean_ms"], rel=0.6)


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
