"""Kill-and-restart smoke for the :class:`~repro.serving.daemon.AdvisorDaemon` (CI gate).

The daemon's durability contract: killed right after *any* stage checkpoint, a
fresh process constructed over the same artifact store resumes the in-flight
cycle and lands on the **bitwise-identical** recommendation front an
uninterrupted run produces.  This script proves it with real processes:

* **child mode** (``--child --store DIR [--kill-after STAGE]``) builds a fully
  deterministic two-cycle daemon world (tiny 6-component app, seeded telemetry,
  seeded search, scripted monitor) over ``DIR`` and runs cycles to completion;
  with ``--kill-after`` it dies via ``os._exit`` right after that stage's
  checkpoint of cycle 2 — no cleanup, no flushing, a real crash.
* **check mode** (``--check``, the default) orchestrates three children:
  run A uninterrupted on store A; run B killed after the splice checkpoint on
  store B; run C resumed on store B.  It asserts the resumed front sha equals
  the uninterrupted one and that the resumed compile streamed artifacts from
  the store.

Usage::

    PYTHONPATH=src python benchmarks/serving_daemon_smoke.py --check
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional

#: Exit code the killed child dies with (distinguishes the scripted crash from bugs).
KILL_EXIT = 17
#: The stage checkpoint run B is killed after (mid-cycle: drift detected, traces
#: spliced, the re-recommend still pending — the most state-laden crash point).
KILL_STAGE = "splice"
#: Tenant name used by every child.
TENANT = "web"


def _tiny_app():
    """A 6-component, 2-API application (mirrors the test suite's tiny app)."""
    from repro.apps import (
        ApiEndpoint,
        Application,
        CallNode,
        Component,
        ExecutionMode,
        PayloadSpec,
        ResourceProfile,
    )

    service = ResourceProfile(
        cpu_millicores_idle=10.0,
        cpu_millicores_per_rps=5.0,
        memory_mb_idle=32.0,
        memory_mb_per_rps=0.2,
    )
    db = ResourceProfile(
        cpu_millicores_idle=20.0,
        cpu_millicores_per_rps=8.0,
        memory_mb_idle=128.0,
        memory_mb_per_rps=0.4,
        storage_gb=10.0,
    )
    components = [
        Component("Frontend", resources=service),
        Component("ServiceA", resources=service),
        Component("ServiceB", resources=service),
        Component("Cache", resources=service),
        Component("Database", stateful=True, resources=db),
        Component("Notifier", resources=service),
    ]
    cache = CallNode("Cache", "Get", work_ms=0.4, payload=PayloadSpec(100.0, 900.0))
    database = CallNode("Database", "Find", work_ms=1.5, payload=PayloadSpec(150.0, 1_200.0))
    notifier = CallNode("Notifier", "LogAccess", work_ms=25.0, payload=PayloadSpec(80.0, 10.0))
    service_a = CallNode("ServiceA", "Read", work_ms=1.0, payload=PayloadSpec(200.0, 1_500.0))
    service_a.call(cache, ExecutionMode.PARALLEL, gap_ms=0.1)
    service_a.call(database, ExecutionMode.PARALLEL, gap_ms=0.1)
    service_a.call(notifier, ExecutionMode.BACKGROUND, gap_ms=0.1)
    read_root = CallNode("Frontend", "/read", work_ms=0.8, payload=PayloadSpec(300.0, 2_000.0))
    read_root.call(service_a, ExecutionMode.SEQUENTIAL, gap_ms=0.2)

    database_w = CallNode("Database", "Insert", work_ms=2.0, payload=PayloadSpec(800.0, 60.0))
    cache_w = CallNode("Cache", "Invalidate", work_ms=8.0, payload=PayloadSpec(120.0, 10.0))
    service_b = CallNode("ServiceB", "Write", work_ms=1.2, payload=PayloadSpec(900.0, 100.0))
    service_b.call(database_w, ExecutionMode.SEQUENTIAL, gap_ms=0.2)
    service_b.call(cache_w, ExecutionMode.BACKGROUND, gap_ms=0.1)
    write_root = CallNode("Frontend", "/write", work_ms=0.7, payload=PayloadSpec(1_000.0, 150.0))
    write_root.call(service_b, ExecutionMode.SEQUENTIAL, gap_ms=0.2)

    apis = [
        ApiEndpoint("/read", read_root, weight=0.7),
        ApiEndpoint("/write", write_root, weight=0.3),
    ]
    return Application("tiny-app", components, apis)


def _perturb(trace, scale):
    spans = [
        dataclasses.replace(
            span, start_ms=span.start_ms * scale, duration_ms=span.duration_ms * scale
        )
        for span in trace.spans
    ]
    return trace.with_spans(spans)


def _build_daemon(store_dir: str):
    """The deterministic daemon world every child process constructs identically.

    Telemetry, learning and the search are all seeded; the monitor script is
    derived from the advisor's own latency preview (cycle 1 on-model, cycle 2
    one API drifting 6x with a re-profiled trace window) — so any process over
    any store observes the same samples and computes the same answers.
    """
    from repro.optimizer import GAConfig
    from repro.quality import MigrationPreferences
    from repro.recommend import AdvisorService, Atlas, AtlasConfig
    from repro.serving import AdvisorDaemon, ArtifactStore, MonitorSample, ScriptedMonitor
    from repro.simulator import simulate_workload
    from repro.workload import WorkloadGenerator, default_scenario

    app = _tiny_app()
    scenario = default_scenario(app, base_rps=20.0, peak_rps=30.0, duration_ms=60_000.0)
    requests = WorkloadGenerator(app, scenario, seed=3).generate(60_000.0)
    telemetry = simulate_workload(app, requests, seed=3).telemetry
    atlas = Atlas(
        app,
        MigrationPreferences.pin_on_prem(["Database"]),
        config=AtlasConfig(
            traces_per_api=15,
            ga=GAConfig(
                population_size=12,
                offspring_per_generation=6,
                evaluation_budget=120,
                train_iterations=8,
                train_batch_size=2,
                train_pairs=6,
                seed=7,
            ),
        ),
    )
    atlas.learn(telemetry)
    service = AdvisorService(store=ArtifactStore(store_dir))

    # The scripted samples: cycle 1 reports exactly the advisor's preview of its
    # own knee plan (zero-divergence baselines), cycle 2 inflates one API 6x.
    # This recommend shares the daemon tenant's memo key, so it costs nothing
    # extra at bootstrap and revives from the journal in resumed processes.
    recommendation = service.recommend(atlas, expected_scale=2.0)
    knee = recommendation.knee_point().plan
    preview = {
        api: [float(x) for x in estimate.estimated_latencies_ms]
        for api, estimate in recommendation.latency_preview(knee).items()
    }
    target = sorted(preview)[0]
    drifted = {
        api: ([v * 6.0 + 25.0 for v in values] if api == target else list(values))
        for api, values in preview.items()
    }
    window = [
        _perturb(trace, 1.7)
        for trace in atlas.knowledge.api_profiles[target].sample_traces
    ]
    monitor = ScriptedMonitor(
        {
            TENANT: [
                MonitorSample(recent_latencies=preview),
                MonitorSample(recent_latencies=drifted, traces_by_api={target: window}),
            ]
        }
    )
    daemon = AdvisorDaemon(service, monitor, name="smoke")
    daemon.register(TENANT, atlas, expected_scale=2.0)
    return daemon


def run_child(store_dir: str, kill_after: Optional[str] = None) -> Dict:
    """Run daemon cycles over ``store_dir``; optionally die mid-cycle-2 for real."""
    daemon = _build_daemon(store_dir)

    if kill_after is not None:

        def die(tenant: str, stage: str) -> None:
            if stage == kill_after and int(daemon.record(TENANT)["cycle"]) >= 2:
                os._exit(KILL_EXIT)  # a real crash: no unwinding, no cleanup

        daemon._after_stage = die

    for _ in range(4):
        daemon.run_cycle()
        record = daemon.record(TENANT)
        if int(record["cycle"]) >= 2 and record["stage"] == "done" and record["front_sha"]:
            break
    record = daemon.record(TENANT)
    return {
        "front_sha": record["front_sha"],
        "cycle": record["cycle"],
        "store_hits": daemon.service.cache.stats().get("store_hits", 0),
    }


def _spawn(script: Path, store: Path, kill_after: Optional[str], timeout_s: float) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(script.parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    argv = [sys.executable, str(script), "--child", "--store", str(store)]
    if kill_after:
        argv += ["--kill-after", kill_after]
    return subprocess.run(argv, env=env, capture_output=True, text=True, timeout=timeout_s)


def run_check(timeout_s: float = 600.0) -> Dict:
    """The three-process kill-and-restart certification; raises on any violation."""
    script = Path(__file__).resolve()
    with tempfile.TemporaryDirectory(prefix="atlas-daemon-smoke-") as tmp:
        store_a, store_b = Path(tmp) / "a", Path(tmp) / "b"

        clean = _spawn(script, store_a, None, timeout_s)
        assert clean.returncode == 0, f"uninterrupted run failed:\n{clean.stderr}"
        uninterrupted = json.loads(clean.stdout.strip().splitlines()[-1])

        killed = _spawn(script, store_b, KILL_STAGE, timeout_s)
        assert killed.returncode == KILL_EXIT, (
            f"expected the child to die with exit {KILL_EXIT} after the "
            f"'{KILL_STAGE}' checkpoint, got {killed.returncode}:\n{killed.stderr}"
        )

        resumed_proc = _spawn(script, store_b, None, timeout_s)
        assert resumed_proc.returncode == 0, f"resumed run failed:\n{resumed_proc.stderr}"
        resumed = json.loads(resumed_proc.stdout.strip().splitlines()[-1])

    assert uninterrupted["front_sha"], "uninterrupted run produced no front"
    assert resumed["front_sha"] == uninterrupted["front_sha"], (
        "resumed front diverged from the uninterrupted run: "
        f"{resumed['front_sha']} != {uninterrupted['front_sha']}"
    )
    assert resumed["store_hits"] > 0, "resumed process recompiled instead of reusing the store"
    verdict = {
        "kill_stage": KILL_STAGE,
        "front_sha": uninterrupted["front_sha"],
        "resumed_store_hits": resumed["store_hits"],
    }
    print(
        "daemon kill-and-restart smoke: PASS "
        f"(killed after '{KILL_STAGE}', resumed front {verdict['front_sha'][:12]}..., "
        f"{verdict['resumed_store_hits']} artifacts streamed from the store)"
    )
    return verdict


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true", help="run one daemon world")
    parser.add_argument("--store", help="artifact store directory (child mode)")
    parser.add_argument("--kill-after", help="os._exit after this cycle-2 stage checkpoint")
    parser.add_argument("--check", action="store_true", help="run the 3-process smoke (default)")
    args = parser.parse_args(argv)
    if args.child:
        if not args.store:
            parser.error("--child requires --store")
        print(json.dumps(run_child(args.store, args.kill_after)))
        return 0
    run_check()
    return 0


if __name__ == "__main__":
    sys.exit(main())
