"""Figure 20 — network footprint accuracy across all nine APIs."""

from _shared import run_once, social_testbed

from repro.analysis import figure20_footprint_accuracy, format_table


def test_fig20_footprint_accuracy(benchmark):
    testbed = social_testbed()
    rows = run_once(benchmark, lambda: figure20_footprint_accuracy(testbed))
    print()
    print(format_table(rows, title="Figure 20: footprint accuracy per API (%)"))
    assert len(rows) == 9
    accuracies = [row["accuracy_pct"] for row in rows]
    # The paper reports 86.7% - 97.6%; the simulator substitutes real payload variation
    # with synthetic content, so we require a slightly looser floor.
    assert min(accuracies) > 60.0
    assert sum(accuracies) / len(accuracies) > 80.0
