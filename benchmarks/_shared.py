"""Shared setup for the benchmark harness.

Every benchmark reproduces one table/figure of the paper on the same evaluation testbed
(the social network under a 5x burst).  Building the testbed and running the seven
placement methods is expensive, so both are memoized at module level and shared by all
benchmark files collected in the same pytest process.

Benchmarks are executed once per session (``benchmark.pedantic(..., rounds=1)``): the
interesting output is the printed table/series, and the recorded time is the wall-clock
cost of regenerating that artifact.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path
from typing import Dict, Optional

from repro.analysis import MethodResult, Testbed, get_testbed, run_methods

#: Append-run metrics ledger of the scenario-stress / certification benchmarks.
BENCH_METRICS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenario_stress.json"

#: Append-run metrics ledger of the evaluation/scenario throughput benchmarks
#: (wall-clock, plans/sec, engine, workers — the perf trajectory the fused tier
#: is gated on; rendered by ``benchmarks/report.py``).
BENCH_EVAL_THROUGHPUT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_eval_throughput.json"
)

#: Append-run metrics ledger of the warm-path serving benchmarks (cold vs warm
#: recommend latency, splice vs full-rebuild time; rendered by ``benchmarks/report.py``).
BENCH_WARM_PATH_PATH = Path(__file__).resolve().parent.parent / "BENCH_warm_path.json"

#: Append-run metrics ledger of the durable serving benchmarks (cold recommend vs
#: warm process restart over the artifact store; rendered by ``benchmarks/report.py``).
BENCH_SERVING_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Search budget (plans visited) shared by Atlas, the affinity GA and random search.
SEARCH_BUDGET = 2_500

_TESTBED_KWARGS = dict(
    application="social-network",
    duration_ms=90_000.0,
    base_rps=12.0,
    peak_rps=22.0,
    evaluation_budget=SEARCH_BUDGET,
    population_size=60,
    train_iterations=150,
    traces_per_api=10,
)

_HOTEL_KWARGS = dict(
    application="hotel-reservation",
    duration_ms=90_000.0,
    base_rps=12.0,
    peak_rps=22.0,
    evaluation_budget=1_500,
    population_size=40,
    train_iterations=80,
    traces_per_api=10,
)

_methods_cache: Dict[str, Dict[str, MethodResult]] = {}


def social_testbed() -> Testbed:
    """The social-network evaluation testbed shared by most benchmarks."""
    return get_testbed(**_TESTBED_KWARGS)


def fused_testbed() -> Testbed:
    """The 3-site social-network testbed the fused-engine bar is measured on."""
    return get_testbed(**_TESTBED_KWARGS, n_locations=3)


def hotel_testbed() -> Testbed:
    """The hotel-reservation testbed (used by the Figure 15 benchmark)."""
    return get_testbed(**_HOTEL_KWARGS)


def social_methods() -> Dict[str, MethodResult]:
    """All seven placement methods on the social-network testbed (memoized)."""
    if "social" not in _methods_cache:
        _methods_cache["social"] = run_methods(social_testbed(), search_budget=SEARCH_BUDGET)
    return _methods_cache["social"]


def hotel_methods() -> Dict[str, MethodResult]:
    if "hotel" not in _methods_cache:
        _methods_cache["hotel"] = run_methods(
            hotel_testbed(),
            methods=("atlas", "affinity-ga", "random-search"),
            search_budget=1_500,
        )
    return _methods_cache["hotel"]


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def _git_sha() -> Optional[str]:
    """The repository's current commit, or None outside a usable git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        return None


def persist_run_metrics(bench: str, metrics: Dict, path: Optional[Path] = None) -> Dict:
    """Append one benchmark run's metrics to the ``BENCH_scenario_stress.json`` ledger.

    The ledger is append-only across runs — ``{"schema": 1, "runs": [...]}``, each
    run stamped with a UTC timestamp and the git commit it measured — so stress /
    certification regressions are diffable across commits.  An unreadable ledger is
    reset rather than crashing the benchmark.  Returns the appended record.
    """
    target = Path(path) if path is not None else BENCH_METRICS_PATH
    record = {
        "bench": bench,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "git_sha": _git_sha(),
        "metrics": metrics,
    }
    ledger = {"schema": 1, "runs": []}
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                ledger = loaded
        except (OSError, json.JSONDecodeError):
            pass
    ledger["runs"].append(record)
    target.write_text(json.dumps(ledger, indent=2) + "\n")
    return record
