"""Warm-path serving: fingerprint-keyed artifact reuse + incremental splice.

The replay kernels made plan *evaluation* cheap, so for repeated / multi-tenant
serving the per-request compile step (trace compilation, Δ tables, program fusion)
and the search itself dominate recommend latency.  This benchmark measures the two
warm-path mechanisms on the 3-site social-network testbed:

* **cold vs warm recommend** — an :class:`~repro.recommend.advisor.AdvisorService`
  serves the same request twice: the first call compiles + searches, the second is
  answered from the request memo (sound because the seeded search is
  deterministic).  A third call from a *different* Atlas instance learned from the
  same telemetry must also hit (content fingerprints, not object identity).
  Bar: warm recommend at least ``WARM_SPEEDUP_BAR``x faster than cold, with the
  recommendation fronts identical.

* **splice vs full rebuild** — after 1 of N APIs drifts, ``ApiPerformanceModel.splice``
  recompiles only that API's fragments and re-concatenates the fused program, versus
  building a fresh model and compiling everything from scratch.  Bar: splice at
  least ``SPLICE_SPEEDUP_BAR``x faster, with every compiled array and the fused
  program bitwise identical to the from-scratch build.

Both bars append to the ``BENCH_warm_path.json`` ledger (headline:
``splice_speedup``) rendered and gated by ``benchmarks/report.py``.
"""

import dataclasses
import gc
import time

import numpy as np

from _shared import (
    BENCH_WARM_PATH_PATH,
    fused_testbed,
    persist_run_metrics,
    run_once,
)

from repro.analysis import format_table
from repro.quality.performance import ApiPerformanceModel
from repro.recommend import AdvisorService, Atlas

#: Required speedup of a memo-hit recommend over the cold compile + search.
WARM_SPEEDUP_BAR = 5.0
#: Required speedup of splicing 1 of N APIs over a from-scratch model rebuild.
SPLICE_SPEEDUP_BAR = 3.0
#: Interleaved timing trials for the splice bar; each arm scored by its best trial.
SPLICE_TRIALS = 5


def _perturb(trace, scale):
    """The same trace with all timings scaled — genuinely new content, same shape."""
    spans = [
        dataclasses.replace(
            span, start_ms=span.start_ms * scale, duration_ms=span.duration_ms * scale
        )
        for span in trace.spans
    ]
    return trace.with_spans(spans)


def _fresh_model(testbed, traces_by_api, engine="fused"):
    """A cold performance model over the given traces (no artifact cache)."""
    knowledge = testbed.atlas.knowledge
    return ApiPerformanceModel(
        traces_by_api=traces_by_api,
        footprint=knowledge.footprint,
        network=testbed.atlas.network,
        baseline_plan=testbed.atlas.current_plan,
        traces_per_api=testbed.atlas.config.traces_per_api,
        engine=engine,
    )


def _compile_all(model):
    """Force every lazily-compiled artifact: per-API sets + the fused program."""
    for api in model.apis:
        model._compiled_set(api)
    if model.is_fused:
        model._fused_program()


def _front_payload(recommendation):
    """Plan vectors + repr-exact objective vectors of the recommended front."""
    return [
        (quality.plan.to_vector(), [repr(v) for v in quality.objectives()])
        for quality in recommendation.plans
    ]


def _program_arrays(program):
    """Every float/index array of a compiled/fused program, in deterministic order."""
    arrays = [a for a in (getattr(program, name, None) for name in
                          ("root_idx", "root_start", "_root_idx", "_root_start"))
              if isinstance(a, np.ndarray)]
    for level in program._levels:
        for slot in level.__slots__:
            value = getattr(level, slot)
            if isinstance(value, np.ndarray):
                arrays.append(value)
    return arrays


def test_warm_path(benchmark):
    testbed = fused_testbed()
    atlas = testbed.atlas
    kwargs = dict(expected_scale=testbed.expected_scale)

    def measure():
        service = AdvisorService()
        start = time.perf_counter()
        cold_rec = service.recommend(atlas, **kwargs)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm_rec = service.recommend(atlas, **kwargs)
        warm_s = time.perf_counter() - start

        # A second tenant: a fresh Atlas learned from the same telemetry must hit
        # the same memo entry — the keys are content fingerprints, not object ids.
        tenant = Atlas(
            atlas.application,
            atlas.preferences,
            network=atlas.network,
            config=atlas.config,
            current_plan=atlas.current_plan,
            cluster=atlas.cluster,
        )
        tenant.learn(testbed.telemetry)
        start = time.perf_counter()
        tenant_rec = service.recommend(tenant, **kwargs)
        tenant_s = time.perf_counter() - start

        # Splice bar: 1 of N APIs gets a re-profiled trace window.  Each trial
        # perturbs by a different factor so the spliced content is genuinely new,
        # and both arms end on identical traces for the bitwise comparison.
        base_traces = {
            api: list(profile.sample_traces)
            for api, profile in atlas.knowledge.api_profiles.items()
        }
        # The drifted API: the median-sized one (by span count), deterministically —
        # "1 of N APIs" means a typical API, not the largest or smallest outlier.
        by_size = sorted(
            base_traces, key=lambda a: (sum(len(t.spans) for t in base_traces[a]), a)
        )
        target = by_size[len(by_size) // 2]
        splice_s = float("inf")
        rebuild_s = float("inf")
        spliced_model = None
        rebuilt_model = None
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for trial in range(SPLICE_TRIALS):
                scale = 1.01 + 0.01 * trial
                fresh = [_perturb(t, scale) for t in base_traces[target]]
                new_traces = dict(base_traces)
                new_traces[target] = fresh

                warm_model = _fresh_model(testbed, base_traces)
                _compile_all(warm_model)
                start = time.perf_counter()
                warm_model.splice({target: fresh})
                _compile_all(warm_model)
                splice_s = min(splice_s, time.perf_counter() - start)

                start = time.perf_counter()
                cold_model = _fresh_model(testbed, new_traces)
                _compile_all(cold_model)
                rebuild_s = min(rebuild_s, time.perf_counter() - start)
                spliced_model, rebuilt_model = warm_model, cold_model
        finally:
            if gc_was_enabled:
                gc.enable()

        # Bitwise contract: the spliced model's compiled arrays and fused program
        # equal the from-scratch build of the same final traces, byte for byte.
        bitwise = True
        for api in spliced_model.apis:
            a, b = spliced_model._compiled_set(api), rebuilt_model._compiled_set(api)
            for left, right in zip(_program_arrays(a), _program_arrays(b)):
                if left.tobytes() != right.tobytes():
                    bitwise = False
        for left, right in zip(
            _program_arrays(spliced_model._fused_program()),
            _program_arrays(rebuilt_model._fused_program()),
        ):
            if left.tobytes() != right.tobytes():
                bitwise = False

        return {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "tenant_s": tenant_s,
            "splice_s": splice_s,
            "rebuild_s": rebuild_s,
            "bitwise": bitwise,
            "apis": len(base_traces),
            "target": target,
            "cold_front": _front_payload(cold_rec),
            "warm_front": _front_payload(warm_rec),
            "tenant_front": _front_payload(tenant_rec),
            "stats": service.stats(),
        }

    result = run_once(benchmark, measure)
    warm_speedup = result["cold_s"] / result["warm_s"]
    tenant_speedup = result["cold_s"] / result["tenant_s"]
    splice_speedup = result["rebuild_s"] / result["splice_s"]
    rows = [
        {
            "path": "cold recommend (compile + search)",
            "seconds": round(result["cold_s"], 4),
            "speedup": "1.00x",
        },
        {
            "path": "warm recommend (memo hit)",
            "seconds": round(result["warm_s"], 4),
            "speedup": f"{warm_speedup:.0f}x",
        },
        {
            "path": "warm recommend (second tenant)",
            "seconds": round(result["tenant_s"], 4),
            "speedup": f"{tenant_speedup:.0f}x",
        },
        {
            "path": f"full rebuild ({result['apis']} APIs)",
            "seconds": round(result["rebuild_s"], 4),
            "speedup": "1.00x",
        },
        {
            "path": f"splice (1 API: {result['target']})",
            "seconds": round(result["splice_s"], 4),
            "speedup": f"{splice_speedup:.1f}x",
        },
    ]
    print()
    print(format_table(rows, title="Warm-path serving (3-site social network)"))
    print(
        f"artifact cache: {result['stats']['artifacts']}, "
        f"request memo: {result['stats']['recommendations']}"
    )
    persist_run_metrics(
        "warm_path",
        {
            "engine": "fused",
            "apis": result["apis"],
            "spliced_apis": 1,
            "spliced_api": result["target"],
            "cold_recommend_s": round(result["cold_s"], 4),
            "warm_recommend_s": round(result["warm_s"], 6),
            "tenant_recommend_s": round(result["tenant_s"], 6),
            "warm_speedup": round(warm_speedup, 1),
            "full_rebuild_s": round(result["rebuild_s"], 4),
            "splice_s": round(result["splice_s"], 4),
            "splice_speedup": round(splice_speedup, 2),
        },
        path=BENCH_WARM_PATH_PATH,
    )
    # Warm answers are the cold answer: identical fronts, for both memo hits.
    assert result["warm_front"] == result["cold_front"]
    assert result["tenant_front"] == result["cold_front"]
    assert result["stats"]["recommendations"]["hits"] >= 2
    # Splice is a rebuild, not an approximation.
    assert result["bitwise"], "spliced arrays differ from the from-scratch build"
    assert warm_speedup >= WARM_SPEEDUP_BAR, (
        f"warm recommend speedup {warm_speedup:.1f}x is below the "
        f"{WARM_SPEEDUP_BAR}x bar"
    )
    assert splice_speedup >= SPLICE_SPEEDUP_BAR, (
        f"splice speedup {splice_speedup:.2f}x is below the {SPLICE_SPEEDUP_BAR}x bar"
    )
