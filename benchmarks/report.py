"""Render the persistent ``BENCH_*.json`` ledgers as a markdown perf-trajectory report.

Every throughput/stress benchmark appends one record per run to a repo-root ledger
(see ``_shared.persist_run_metrics``): wall-clock, plans/sec, engine, workers and
the git commit it measured.  This script turns those append-only ledgers into the
perf trajectory of the repository — per bench: the latest run, the best run ever
recorded, and the regression of latest vs best on the bench's headline metric.

Usage::

    python benchmarks/report.py                  # print markdown to stdout
    python benchmarks/report.py -o report.md     # also write it to a file (CI artifact)
    python benchmarks/report.py --check          # exit 1 on any REGRESSION row (CI gate)

The headline metric per bench is picked by direction-aware preference: explicit
speedups first (higher is better), then throughput rates (``*_per_s``, higher),
then wall-clock seconds (``*_s``/``seconds``, lower).  Runs missing the headline
metric (older schema revisions) still count toward the run total but not the
best/latest comparison.

Runs recorded under different measurement modes are not comparable (e.g. the early
``fused_eval_throughput`` runs timed whole-batch passes, the current ones time
GA-generation chunks): a run's optional ``metrics["mode"]`` tag splits it into its
own ``bench[mode]`` trend row, so latest-vs-best is always apples-to-apples.

``--check`` turns the trend column into a regression gate: when any bench's latest
run has worsened more than ``REGRESSION_THRESHOLD`` (10%) off its best recorded
run, the script exits non-zero and CI fails.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Worsening of latest-vs-best beyond which the trend column flags a regression.
REGRESSION_THRESHOLD = 0.10


def load_ledgers(root: Path = REPO_ROOT) -> List[Dict]:
    """Every run record of every ``BENCH_*.json`` ledger under ``root`` (sorted by
    timestamp so "latest" is well-defined even across interleaved ledgers)."""
    runs: List[Dict] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        for run in payload.get("runs", []) if isinstance(payload, dict) else []:
            if isinstance(run, dict) and isinstance(run.get("metrics"), dict):
                runs.append({**run, "ledger": path.name})
    runs.sort(key=lambda run: str(run.get("timestamp", "")))
    return runs


def headline_metric(metrics: Dict) -> Optional[Tuple[str, bool]]:
    """(metric key, higher_is_better) for one run's metrics, or None.

    Direction heuristic: speedups and rates improve upward, wall-clock seconds
    improve downward.  Deterministic across runs of the same bench because the
    candidates are scanned in sorted key order within each preference tier.
    """
    keys = sorted(metrics)
    numeric = [
        k for k in keys if isinstance(metrics[k], (int, float)) and k != "workers"
    ]
    for key in ("speedup", "fused32_speedup"):
        if key in numeric:
            return key, True
    for key in numeric:
        if key.endswith("_speedup"):
            return key, True
    for key in numeric:
        if key.endswith("_per_s"):
            return key, True
    for key in numeric:
        if key.endswith("_s") or key == "seconds":
            return key, False
    return None


def _short_sha(run: Dict) -> str:
    sha = run.get("git_sha")
    return str(sha)[:9] if sha else "-"


def _day(run: Dict) -> str:
    return str(run.get("timestamp", ""))[:10] or "-"


def _bench_group(run: Dict) -> str:
    """Trend-group label of one run: ``bench``, or ``bench[mode]`` when tagged.

    Runs of the same bench measured under different modes (whole-batch vs chunked
    timing, say) are different quantities; the mode tag keeps their trends apart.
    """
    bench = str(run.get("bench", "?"))
    mode = run.get("metrics", {}).get("mode")
    return f"{bench}[{mode}]" if mode else bench


def build_rows(runs: List[Dict]) -> List[Dict]:
    """One report row per bench group: latest vs best on the headline metric."""
    by_bench: Dict[str, List[Dict]] = {}
    for run in runs:
        by_bench.setdefault(_bench_group(run), []).append(run)
    rows = []
    for bench in sorted(by_bench):
        bench_runs = by_bench[bench]
        latest = bench_runs[-1]
        choice = headline_metric(latest["metrics"])
        if choice is None:
            rows.append(
                {
                    "bench": bench,
                    "runs": len(bench_runs),
                    "metric": "-",
                    "latest": "-",
                    "best": "-",
                    "trend": "-",
                    "sha": _short_sha(latest),
                    "when": _day(latest),
                }
            )
            continue
        key, higher = choice
        scored = [run for run in bench_runs if isinstance(run["metrics"].get(key), (int, float))]
        best = (max if higher else min)(scored, key=lambda run: run["metrics"][key])
        latest_value = float(latest["metrics"][key])
        best_value = float(best["metrics"][key])
        if best_value != 0:
            gap = (best_value - latest_value) / abs(best_value)
            worsening = gap if higher else -gap
        else:
            worsening = 0.0
        if worsening > REGRESSION_THRESHOLD:
            trend = f"REGRESSION -{worsening:.0%}"
        elif latest is best or latest_value == best_value:
            trend = "at best"
        else:
            trend = f"-{worsening:.0%} off best"
        rows.append(
            {
                "bench": bench,
                "runs": len(bench_runs),
                "metric": f"{key} ({'^' if higher else 'v'})",
                "latest": f"{latest_value:g}",
                "best": f"{best_value:g} @ {_short_sha(best)}",
                "trend": trend,
                "sha": _short_sha(latest),
                "when": _day(latest),
            }
        )
    return rows


def render_markdown(rows: List[Dict]) -> str:
    header = ["bench", "runs", "metric", "latest", "best", "trend", "sha", "when"]
    lines = [
        "# Benchmark perf trajectory",
        "",
        "Rendered from the repo-root `BENCH_*.json` ledgers "
        "(`benchmarks/_shared.persist_run_metrics`).  `^` = higher is better, "
        "`v` = lower is better; `trend` compares the latest run to the best "
        "recorded run of the same bench.",
        "",
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row[h]) for h in header) + " |")
    if not rows:
        lines.append("| _no ledger runs found_ |" + " |" * (len(header) - 1))
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", type=Path, default=None, help="also write the markdown here"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory scanned for BENCH_*.json ledgers (default: repo root)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "regression gate: exit 1 when any bench's latest run is more than "
            f"{REGRESSION_THRESHOLD:.0%} off its best recorded run"
        ),
    )
    args = parser.parse_args(argv)
    rows = build_rows(load_ledgers(args.root))
    report = render_markdown(rows)
    print(report, end="")
    if args.output is not None:
        args.output.write_text(report)
    if args.check:
        regressed = [row for row in rows if str(row["trend"]).startswith("REGRESSION")]
        for row in regressed:
            print(
                f"REGRESSION: {row['bench']} latest {row['latest']} vs best "
                f"{row['best']} ({row['trend']})"
            )
        if regressed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
