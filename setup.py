"""Setup shim so editable installs work on offline environments without the wheel package."""
from setuptools import setup

setup()
