"""Unit tests for the telemetry substrate: tracing, metrics, mesh, server."""

import pytest

from repro.telemetry import (
    ComponentMetricsStore,
    MetricSample,
    PairwiseNetworkMetrics,
    Span,
    TelemetryServer,
    Trace,
    TraceStore,
    new_trace_id,
)


def make_trace(trace_id="t1", api="/read", start=0.0):
    root = Span(trace_id, "s1", None, "Frontend", api, start, 10.0)
    child = Span(trace_id, "s2", "s1", "ServiceA", "Read", start + 1.0, 6.0)
    leaf = Span(trace_id, "s3", "s2", "Database", "Find", start + 2.0, 3.0)
    return Trace(trace_id, api, [root, child, leaf])


class TestSpan:
    def test_end_and_root(self):
        span = Span("t", "s", None, "C", "op", 5.0, 2.0)
        assert span.end_ms == 7.0
        assert span.is_root

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Span("t", "s", None, "C", "op", 0.0, -1.0)

    def test_shifted_preserves_identity(self):
        span = Span("t", "s", "p", "C", "op", 5.0, 2.0)
        shifted = span.shifted(10.0)
        assert shifted.start_ms == 10.0
        assert shifted.duration_ms == 2.0
        assert shifted.span_id == "s"
        assert shifted.parent_id == "p"

    def test_new_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()


class TestTrace:
    def test_requires_single_root(self):
        spans = [
            Span("t", "a", None, "C", "op", 0.0, 1.0),
            Span("t", "b", None, "C", "op", 0.0, 1.0),
        ]
        with pytest.raises(ValueError):
            Trace("t", "/x", spans)

    def test_requires_known_parent(self):
        spans = [
            Span("t", "a", None, "C", "op", 0.0, 1.0),
            Span("t", "b", "ghost", "C", "op", 0.0, 1.0),
        ]
        with pytest.raises(ValueError):
            Trace("t", "/x", spans)

    def test_rejects_duplicate_span_ids(self):
        spans = [
            Span("t", "a", None, "C", "op", 0.0, 1.0),
            Span("t", "a", "a", "C", "op", 0.0, 1.0),
        ]
        with pytest.raises(ValueError):
            Trace("t", "/x", spans)

    def test_latency_is_root_duration(self):
        trace = make_trace()
        assert trace.latency_ms == 10.0
        assert trace.start_ms == 0.0

    def test_children_ordering(self):
        trace = make_trace()
        assert [s.span_id for s in trace.children("s1")] == ["s2"]
        assert trace.children("s3") == []

    def test_parent_lookup(self):
        trace = make_trace()
        assert trace.parent("s2").span_id == "s1"
        assert trace.parent("s1") is None

    def test_components_in_first_seen_order(self):
        trace = make_trace()
        assert trace.components() == ["Frontend", "ServiceA", "Database"]

    def test_invocation_edges(self):
        trace = make_trace()
        assert trace.invocation_edges() == [
            ("Frontend", "ServiceA"),
            ("ServiceA", "Database"),
        ]

    def test_with_spans_keeps_identity(self):
        trace = make_trace()
        shifted = trace.with_spans([s.shifted(s.start_ms + 5.0) for s in trace.spans])
        assert shifted.trace_id == trace.trace_id
        assert shifted.api == trace.api
        assert shifted.start_ms == 5.0


class TestTraceStore:
    def test_query_by_api_and_time(self):
        store = TraceStore()
        store.add(make_trace("a", "/read", 0.0))
        store.add(make_trace("b", "/read", 100.0))
        store.add(make_trace("c", "/write", 50.0))
        assert len(store) == 3
        assert store.apis == ["/read", "/write"]
        assert len(store.traces("/read")) == 2
        assert len(store.traces("/read", start_ms=50.0)) == 1
        assert len(store.traces(end_ms=60.0)) == 2
        assert len(store.traces("/read", limit=1)) == 1

    def test_latencies(self):
        store = TraceStore()
        store.extend([make_trace("a"), make_trace("b", start=5.0)])
        assert store.latencies("/read") == [10.0, 10.0]

    def test_request_counts_bucketing(self):
        store = TraceStore()
        store.add(make_trace("a", "/read", 0.0))
        store.add(make_trace("b", "/read", 1_500.0))
        counts = store.request_counts(window_ms=1_000.0)
        assert counts["/read"] == {0: 1, 1: 1}

    def test_invocation_counts(self):
        store = TraceStore()
        store.add(make_trace("a", "/read", 0.0))
        store.add(make_trace("b", "/read", 100.0))
        counts = store.invocation_counts("/read", window_ms=1_000.0)
        assert counts[("Frontend", "ServiceA")][0] == 2


class TestComponentMetrics:
    def test_accumulates_within_window(self):
        store = ComponentMetricsStore(window_ms=1_000.0)
        store.record("A", 100.0, cpu_millicores=10.0, requests=1.0)
        store.record("A", 900.0, cpu_millicores=5.0, requests=1.0)
        assert store.value("A", 0, "cpu_millicores") == 15.0
        assert store.value("A", 0, "requests") == 2.0

    def test_memory_is_high_water_mark(self):
        store = ComponentMetricsStore(window_ms=1_000.0)
        store.record("A", 100.0, memory_mb=50.0)
        store.record("A", 200.0, memory_mb=30.0)
        assert store.value("A", 0, "memory_mb") == 50.0

    def test_series_and_totals(self):
        store = ComponentMetricsStore(window_ms=1_000.0)
        store.record("A", 0.0, cpu_millicores=1.0)
        store.record("A", 2_500.0, cpu_millicores=3.0)
        assert store.windows() == [0, 2]
        assert store.series("A", "cpu_millicores") == [1.0, 3.0]
        assert store.series("A", "cpu_millicores", windows=[0, 1, 2]) == [1.0, 0.0, 3.0]
        assert store.total("A", "cpu_millicores") == 4.0

    def test_aggregate_and_peak(self):
        store = ComponentMetricsStore(window_ms=1_000.0)
        store.record("A", 0.0, cpu_millicores=1.0)
        store.record("B", 0.0, cpu_millicores=2.0)
        store.record("A", 1_000.0, cpu_millicores=5.0)
        assert store.aggregate("cpu_millicores") == [3.0, 5.0]
        assert store.peak("cpu_millicores") == 5.0
        assert store.peak("cpu_millicores", components=["B"]) == 2.0

    def test_unknown_metric_rejected(self):
        store = ComponentMetricsStore()
        with pytest.raises(KeyError):
            store.value("A", 0, "gpu")

    def test_record_sample(self):
        store = ComponentMetricsStore()
        store.record_sample(MetricSample(component="A", window=2, cpu_millicores=7.0))
        assert store.value("A", 2, "cpu_millicores") == 7.0
        assert store.samples()[0].component == "A"

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            MetricSample(component="A", window=0, cpu_millicores=-1.0)


class TestMeshMetrics:
    def test_record_and_read(self):
        mesh = PairwiseNetworkMetrics(window_ms=1_000.0)
        mesh.record("A", "B", 100.0, 500.0, 200.0)
        mesh.record("A", "B", 600.0, 300.0, 100.0)
        assert mesh.request_bytes("A", "B", 0) == 800.0
        assert mesh.response_bytes("A", "B", 0) == 300.0
        assert mesh.pairs() == [("A", "B")]

    def test_directionality(self):
        mesh = PairwiseNetworkMetrics()
        mesh.record("A", "B", 0.0, 100.0, 0.0)
        assert mesh.request_bytes("B", "A", 0) == 0.0

    def test_series_and_totals(self):
        mesh = PairwiseNetworkMetrics(window_ms=1_000.0)
        mesh.record("A", "B", 0.0, 100.0, 50.0)
        mesh.record("A", "B", 1_500.0, 200.0, 70.0)
        assert mesh.request_series("A", "B") == [100.0, 200.0]
        assert mesh.total_bytes("A", "B") == 420.0
        assert mesh.total_traffic_matrix()[("A", "B")] == 420.0

    def test_traffic_between_groups(self):
        mesh = PairwiseNetworkMetrics()
        mesh.record("A", "B", 0.0, 100.0, 50.0)
        mesh.record("C", "D", 0.0, 10.0, 5.0)
        assert mesh.traffic_between(["A"], ["B"]) == 150.0
        assert mesh.traffic_between(["A", "B"], ["C", "D"]) == 0.0

    def test_negative_bytes_rejected(self):
        mesh = PairwiseNetworkMetrics()
        with pytest.raises(ValueError):
            mesh.record("A", "B", 0.0, -1.0, 0.0)


class TestTelemetryServer:
    def test_ingest_and_query(self):
        server = TelemetryServer(window_ms=1_000.0)
        server.ingest_trace(make_trace("a", "/read", 0.0))
        server.ingest_trace(make_trace("b", "/write", 100.0))
        server.mesh.record("Frontend", "ServiceA", 10.0, 100.0, 50.0)
        server.metrics.record("Frontend", 10.0, cpu_millicores=5.0)
        assert server.apis() == ["/read", "/write"]
        assert len(server.get_traces("/read")) == 1
        assert server.api_latencies("/read") == [10.0]
        assert server.observed_pairs() == [("Frontend", "ServiceA")]
        assert server.component_total("Frontend", "cpu_millicores") == 5.0
        assert server.common_windows() == [0]
        assert server.observation_span_ms() == 1_000.0

    def test_api_request_rates_aligned(self):
        server = TelemetryServer(window_ms=1_000.0)
        server.ingest_trace(make_trace("a", "/read", 0.0))
        server.ingest_trace(make_trace("b", "/read", 2_200.0))
        server.mesh.record("Frontend", "ServiceA", 2_200.0, 1.0, 1.0)
        rates = server.api_request_rates()
        assert rates["/read"] == [1.0, 0.0, 1.0]

    def test_summary(self):
        server = TelemetryServer()
        server.ingest_trace(make_trace())
        summary = server.summary()
        assert summary["traces"] == 1.0
        assert summary["apis"] == 1.0
