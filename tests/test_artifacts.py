"""Warm-path laws: artifact cache, content fingerprints, splice ≡ rebuild, serving.

Four contracts guard the warm path:

* :class:`ArtifactCache` is a plain LRU with observable counters — no result may
  ever depend on whether it is present (cached artifacts are bitwise the fresh ones).
* Content fingerprints are exactly as fine as compilation: distinct trace sets get
  distinct keys, re-profiled-but-identical content gets the same key.
* ``splice`` (compiled set, performance model, evaluator) is a *rebuild*, not an
  approximation: bitwise-identical to compiling the refreshed traces from scratch,
  over random topologies and random dirty-API subsets, on both engines.
* The :class:`AdvisorService` memo returns the cold answer — across calls and
  across Atlas instances — and refuses to memoize requests it cannot key by content.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fingerprints import build_tiny_evaluator
from test_compiled import _random_plans, random_delays, random_trace

from repro.cluster import MigrationPlan, default_network_model
from repro.learning import ApiProfiler, FootprintLearner
from repro.monitoring.drift import DriftDetector, DriftReport, DriftScenarioUpdate
from repro.optimizer import GAConfig
from repro.quality import (
    ApiPerformanceModel,
    ArtifactCache,
    CompiledTraceSet,
    MigrationPreferences,
    ScenarioSpec,
    fingerprint_footprint,
    fingerprint_network,
    fingerprint_traces,
)
from repro.recommend import AdvisorService, Atlas, AtlasConfig
from repro.telemetry import Span, Trace
from repro.workload import default_scenario

TINY_GA = GAConfig(
    population_size=12,
    offspring_per_generation=6,
    evaluation_budget=120,
    train_iterations=8,
    train_batch_size=2,
    train_pairs=6,
    seed=7,
)


def _perturb(trace: Trace, scale: float) -> Trace:
    """The same trace with all timings scaled — new content, same invocation edges."""
    spans = [
        dataclasses.replace(
            span, start_ms=span.start_ms * scale, duration_ms=span.duration_ms * scale
        )
        for span in trace.spans
    ]
    return trace.with_spans(spans)


def _arrays_of(program):
    """Every numpy array of a compiled set / fused program, in deterministic order."""
    arrays = [
        a
        for a in (
            getattr(program, name, None)
            for name in ("root_idx", "root_start", "_root_idx", "_root_start")
        )
        if isinstance(a, np.ndarray)
    ]
    for level in program._levels:
        for slot in level.__slots__:
            value = getattr(level, slot)
            if isinstance(value, np.ndarray):
                arrays.append(value)
    return arrays


def _assert_bitwise(left, right):
    left_arrays, right_arrays = _arrays_of(left), _arrays_of(right)
    assert len(left_arrays) == len(right_arrays)
    for a, b in zip(left_arrays, right_arrays):
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()


# -- the cache itself -------------------------------------------------------------------------
class TestArtifactCache:
    def test_miss_builds_then_hit_returns_same_object(self):
        cache = ArtifactCache()
        built = cache.get_or_build(("k",), lambda: [1, 2, 3])
        again = cache.get_or_build(("k",), lambda: [4, 5, 6])
        assert again is built
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1, "evictions": 0}
        assert ("k",) in cache and len(cache) == 1

    def test_lru_eviction_order_respects_hits(self):
        cache = ArtifactCache(max_entries=2)
        cache.get_or_build(("a",), lambda: "A")
        cache.get_or_build(("b",), lambda: "B")
        cache.get_or_build(("a",), lambda: "A'")  # hit: a becomes most-recent
        cache.get_or_build(("c",), lambda: "C")  # evicts b, not a
        assert ("a",) in cache and ("c",) in cache and ("b",) not in cache
        assert cache.evictions == 1
        assert cache.get_or_build(("b",), lambda: "B2") == "B2"  # b was truly gone

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_clear_drops_entries_keeps_lifetime_counters(self):
        cache = ArtifactCache()
        cache.get_or_build(("k",), lambda: 1)
        cache.get_or_build(("k",), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1


# -- fingerprints -----------------------------------------------------------------------------
class TestFingerprints:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=30, deadline=None)
    def test_distinct_trace_sets_get_distinct_keys(self, seed):
        rng = np.random.default_rng(seed)
        traces = [random_trace(rng, f"t{k}") for k in range(3)]
        base = fingerprint_traces(traces)
        # Any single-span timing tweak must move the key.
        tweaked = list(traces)
        tweaked[1] = _perturb(traces[1], 1.0000001)
        assert fingerprint_traces(tweaked) != base
        # So must dropping or reordering a trace.
        assert fingerprint_traces(traces[:2]) != base
        assert fingerprint_traces(traces[::-1]) != base

    def test_reprofiled_identical_content_hits_the_same_key(self):
        spans = [
            Span("t1", "s0", None, "A", "op", 0.0, 10.0),
            Span("t1", "s1", "s0", "B", "op", 1.0, 4.0),
        ]
        respans = [
            Span("t9", "x0", None, "A", "op", 0.0, 10.0),
            Span("t9", "x1", "x0", "B", "op", 1.0, 4.0),
        ]
        # Different trace/span ids, same structure: the compiled arrays would be
        # identical, so the key must be too.
        assert fingerprint_traces([Trace("t1", "/api", spans)]) == fingerprint_traces(
            [Trace("t9", "/api", respans)]
        )
        # ...but the API name is part of the compiled identity.
        assert fingerprint_traces([Trace("t1", "/api", spans)]) != fingerprint_traces(
            [Trace("t1", "/other", spans)]
        )

    def test_network_fingerprint_tracks_link_content(self):
        a, b = default_network_model(), default_network_model()
        assert fingerprint_network(a) == fingerprint_network(b)
        (pair, link) = next(iter(sorted(b._links.items())))
        b._links[pair] = dataclasses.replace(link, latency_ms=link.latency_ms + 0.5)
        assert fingerprint_network(a) != fingerprint_network(b)

    def test_footprint_fingerprint_tracks_edge_bytes(self, tiny_telemetry):
        _app, result = tiny_telemetry
        one = FootprintLearner(result.telemetry).learn()
        two = FootprintLearner(result.telemetry).learn()
        assert fingerprint_footprint(one) == fingerprint_footprint(two)
        api = one.apis[0]
        pair, edge = next(iter(sorted(two._by_api[api].items())))
        two._by_api[api][pair] = dataclasses.replace(
            edge, request_bytes=edge.request_bytes + 1.0
        )
        assert fingerprint_footprint(one) != fingerprint_footprint(two)


# -- cross-instance artifact reuse ------------------------------------------------------------
@pytest.fixture()
def tiny_model_factory(tiny_telemetry):
    """Factory of tiny-app performance models with an optional shared cache."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    network = default_network_model()

    def build(engine="compiled", cache=None, traces=None):
        return ApiPerformanceModel(
            traces_by_api=traces
            or {api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=network,
            baseline_plan=baseline,
            traces_per_api=20,
            engine=engine,
            artifact_cache=cache,
        )

    return app, build


class TestCrossInstanceReuse:
    def test_two_models_share_one_physical_compile(self, tiny_model_factory):
        app, build = tiny_model_factory
        cache = ArtifactCache()
        one, two = build(cache=cache), build(cache=cache)
        for api in one.apis:
            assert one._compiled_set(api) is two._compiled_set(api)
        assert cache.hits >= len(one.apis)
        # Δ tables are shared too (same traces, plan, bytes, network, locations).
        assert one._delta_table(one.apis[0], 2) is two._delta_table(two.apis[0], 2)

    def test_fused_program_shared_and_results_cache_independent(self, tiny_model_factory):
        app, build = tiny_model_factory
        cache = ArtifactCache()
        one, two = build("fused", cache=cache), build("fused", cache=cache)
        assert one._fused_program() is two._fused_program()
        plain = build("fused")
        for plan in _random_plans(app, 6):
            want = plain.qperf(plan)
            assert one.qperf(plan) == want  # cached artifacts are bitwise the fresh ones
            assert two.qperf(plan) == want

    def test_distinct_content_never_false_shares(self, tiny_model_factory):
        app, build = tiny_model_factory
        cache = ArtifactCache()
        one = build(cache=cache)
        api = one.apis[0]
        perturbed = {a: list(one._traces[a]) for a in one.apis}
        perturbed[api] = [_perturb(t, 1.01) for t in perturbed[api]]
        two = build(cache=cache, traces=perturbed)
        assert one._compiled_set(api) is not two._compiled_set(api)
        # The unchanged APIs still share.
        for other in one.apis:
            if other != api:
                assert one._compiled_set(other) is two._compiled_set(other)


# -- splice ≡ rebuild -------------------------------------------------------------------------
class TestSpliceEquivalence:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_compiled_splice_bitwise_on_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        traces = [random_trace(rng, f"t{k}") for k in range(int(rng.integers(2, 7)))]
        edges = sorted({e for t in traces for e in t.invocation_edges()})
        base = CompiledTraceSet(traces, edges)
        dirty = [
            pos for pos in range(len(traces)) if rng.random() < 0.5
        ] or [int(rng.integers(0, len(traces)))]
        new_traces = [
            _perturb(t, 1.0 + 0.01 * (1 + pos)) if pos in dirty else t
            for pos, t in enumerate(traces)
        ]
        spliced = base.splice(new_traces)
        rebuilt = CompiledTraceSet(new_traces, edges)
        _assert_bitwise(spliced, rebuilt)
        # Clean positions reuse the already-compiled fragment by identity.
        for pos in range(len(traces)):
            if pos not in dirty:
                assert spliced._fragments[pos] is base._fragments[pos]
        delays = random_delays(rng, edges)
        assert spliced.latencies(delays) == rebuilt.latencies(delays)

    @pytest.mark.parametrize("engine", ["compiled", "fused"])
    def test_model_splice_bitwise_vs_fresh_model(self, tiny_model_factory, engine):
        app, build = tiny_model_factory
        rng = np.random.default_rng(5)
        model = build(engine)
        # Warm every artifact first: splice must refresh, not merely drop.
        for plan in _random_plans(app, 4):
            model.qperf(plan)
        apis = model.apis
        targets = apis[: max(1, len(apis) // 2)]
        fresh = {a: [_perturb(t, 1.02) for t in model._traces[a]] for a in targets}
        model.splice(fresh)
        new_traces = {a: list(model._traces[a]) for a in apis}
        rebuilt = build(engine, traces=new_traces)
        for api in apis:
            _assert_bitwise(model._compiled_set(api), rebuilt._compiled_set(api))
        if engine == "fused":
            _assert_bitwise(model._fused_program(), rebuilt._fused_program())
        for plan in _random_plans(app, 8, seed=23):
            assert model.qperf(plan) == rebuilt.qperf(plan)
            for api in apis:
                assert model.estimate(api, plan).estimated_latencies_ms == (
                    rebuilt.estimate(api, plan).estimated_latencies_ms
                )

    def test_model_splice_validates_inputs(self, tiny_model_factory):
        _app, build = tiny_model_factory
        model = build()
        with pytest.raises(KeyError):
            model.splice({"/nope": model._traces[model.apis[0]]})
        with pytest.raises(ValueError):
            model.splice({model.apis[0]: []})

    def test_evaluator_splice_matches_fresh_stack(self, tiny_telemetry):
        app, result = tiny_telemetry
        telemetry = result.telemetry
        spliced_ev = build_tiny_evaluator(app, telemetry)
        api = spliced_ev.performance.apis[0]
        spec = ScenarioSpec(name="burst", rate_scale=2.0, payload_factors={api: 1.5})
        plans = _random_plans(app, 6, seed=31)
        # Warm result caches and a compiled scenario view, then splice.
        for plan in plans[:3]:
            spliced_ev.evaluate(plan)
        spliced_ev._scenario_context(spec)
        fresh_traces = {
            api: [_perturb(t, 1.03) for t in spliced_ev.performance._traces[api]]
        }
        spliced_ev.splice(fresh_traces)

        fresh_ev = build_tiny_evaluator(app, telemetry)
        fresh_ev.performance.splice(fresh_traces)  # same traces, cache-cold stack
        for plan in plans:
            assert spliced_ev.evaluate(plan).objectives() == (
                fresh_ev.evaluate(plan).objectives()
            )
        spliced_view = spliced_ev._scenario_context(spec).performance
        fresh_view = fresh_ev._scenario_context(spec).performance
        for plan in plans:
            assert spliced_view.qperf(plan) == fresh_view.qperf(plan)


# -- scenario-state reuse across probe names --------------------------------------------------
class TestScenarioStateReuse:
    def test_same_identity_different_name_shares_compiled_state(self, tiny_telemetry):
        app, result = tiny_telemetry
        evaluator = build_tiny_evaluator(app, result.telemetry)
        api = evaluator.performance.apis[0]
        probe_a = ScenarioSpec(name="probe-1", rate_scale=1.5, payload_factors={api: 2.0})
        probe_b = ScenarioSpec(name="probe-2", rate_scale=1.5, payload_factors={api: 2.0})
        context_a = evaluator._scenario_context(probe_a)
        context_b = evaluator._scenario_context(probe_b)
        # The adversary probes identical workload shapes under throwaway names:
        # one compile, shared by reference; the spec keeps the caller's name.
        assert context_b.performance is context_a.performance
        assert context_b.spec.name == "probe-2"
        different = ScenarioSpec(name="probe-3", rate_scale=1.5, payload_factors={api: 3.0})
        assert evaluator._scenario_context(different).performance is not context_a.performance

    def test_invalidation_forces_a_true_recompile(self, tiny_telemetry):
        app, result = tiny_telemetry
        evaluator = build_tiny_evaluator(app, result.telemetry)
        api = evaluator.performance.apis[0]
        spec = ScenarioSpec(name="burst", rate_scale=2.0, payload_factors={api: 1.5})
        before = evaluator._scenario_context(spec)
        evaluator.invalidate_for_scenario("burst")
        after = evaluator._scenario_context(spec)
        assert after is not before
        # The identity-keyed state must not resurrect the invalidated compile:
        # the payload-scaled performance view is derived anew.
        assert after.performance is not before.performance


# -- the serving front door -------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_atlas_pair(tiny_telemetry):
    """Two independently learned Atlas instances over the same telemetry."""
    app, result = tiny_telemetry

    def learn():
        atlas = Atlas(
            app,
            MigrationPreferences.pin_on_prem(["Database"]),
            config=AtlasConfig(traces_per_api=15, ga=TINY_GA),
        )
        atlas.learn(result.telemetry)
        return atlas

    return learn(), learn()


class OpaquePreferences(MigrationPreferences):
    """Preferences without a content repr — must make requests unmemoizable."""

    __repr__ = object.__repr__


class TestAdvisorService:
    def test_memo_hit_across_calls_and_instances(self, tiny_atlas_pair):
        atlas, twin = tiny_atlas_pair
        service = AdvisorService()
        cold = service.recommend(atlas, expected_scale=2.0)
        warm = service.recommend(atlas, expected_scale=2.0)
        assert warm is cold
        # A different Atlas instance with identical learned content: same key.
        other = service.recommend(twin, expected_scale=2.0)
        assert other is cold
        assert service.recommendations.stats()["hits"] == 2
        assert service.cache.stats()["misses"] > 0  # artifacts were compiled once

    def test_different_request_content_misses(self, tiny_atlas_pair):
        atlas, _ = tiny_atlas_pair
        service = AdvisorService()
        one = service.recommend(atlas, expected_scale=2.0)
        two = service.recommend(atlas, expected_scale=2.5)
        assert two is not one
        assert service.recommendations.stats()["misses"] == 2

    def test_memoized_answer_is_the_cold_answer(self, tiny_atlas_pair):
        atlas, _ = tiny_atlas_pair
        service = AdvisorService()
        served = service.recommend(atlas, expected_scale=2.0)
        direct = atlas.recommend(expected_scale=2.0)
        assert [
            (q.plan.to_vector(), repr(tuple(q.objectives()))) for q in served.plans
        ] == [(q.plan.to_vector(), repr(tuple(q.objectives()))) for q in direct.plans]

    def test_unmemoizable_arguments_bypass_the_memo(self, tiny_telemetry):
        app, result = tiny_telemetry
        atlas = Atlas(
            app,
            OpaquePreferences(),
            config=AtlasConfig(traces_per_api=15, ga=TINY_GA),
        )
        atlas.learn(result.telemetry)
        service = AdvisorService()
        assert service._request_key(atlas, {}) is None
        recommendation = service.recommend(atlas, expected_scale=2.0)
        assert recommendation.plans
        assert len(service.recommendations) == 0  # a miss is sound, a collision is not

    def test_tenant_registry(self, tiny_atlas_pair):
        atlas, twin = tiny_atlas_pair
        service = AdvisorService()
        assert service.register("team-a", atlas) is atlas
        service.register("team-b", twin)
        assert service.tenants == ["team-a", "team-b"]
        assert service.tenant("team-a") is atlas
        with pytest.raises(KeyError):
            service.tenant("team-c")
        served = service.recommend("team-a", expected_scale=2.0)
        assert service.recommend("team-b", expected_scale=2.0) is served

    def test_unlearned_atlas_still_raises_cleanly(self, tiny_app):
        service = AdvisorService()
        with pytest.raises(RuntimeError):
            service.recommend(Atlas(tiny_app))


# -- the drift → splice loop ------------------------------------------------------------------
class TestDriftSpliceLoop:
    def _detector(self):
        rng = np.random.default_rng(3)
        approx = {"/read": list(rng.normal(50, 2, 40)), "/write": list(rng.normal(80, 2, 40))}
        real = {api: [v + 1.0 for v in series] for api, series in approx.items()}
        return DriftDetector(approx, real, threshold_factor=5.0)

    def test_check_all_threads_traces_for_drifted_apis_only(self, tiny_app):
        detector = self._detector()
        recent = {
            "/read": [150.0 + i for i in range(40)],  # drifted hard
            "/write": [81.0 + 0.01 * i for i in range(40)],  # still on-model
        }
        spans = [Span("t", "s0", None, "A", "op", 0.0, 5.0)]
        traces = {"/read": [Trace("t", "/read", spans)], "/write": [Trace("t", "/write", spans)]}

        # Without a scenario the historical mapping comes back unchanged, traces or not.
        plain = detector.check_all(recent, traces_by_api=traces)
        assert isinstance(plain, dict)
        assert plain["/read"].drift_detected and not plain["/write"].drift_detected

        base = default_scenario(tiny_app)
        update = detector.check_all(recent, scenario=base, traces_by_api=traces)
        assert isinstance(update, DriftScenarioUpdate)
        assert update.drifted_apis == ["/read"]
        # Only the drifted API's trace window rides along into the splice path.
        assert sorted(update.refreshed_traces) == ["/read"]
        assert update.refreshed_traces["/read"] == traces["/read"]
        # No trace window supplied: the historical invalidate-and-rebuild fallback.
        assert detector.check_all(recent, scenario=base).refreshed_traces == {}

    def test_recertify_uses_the_splice_path(self, tiny_atlas_pair):
        atlas, _ = tiny_atlas_pair
        recommendation = atlas.recommend(expected_scale=2.0)
        evaluator = recommendation.evaluator
        api = evaluator.performance.apis[0]
        executed = recommendation.knee_point().plan
        refreshed = [_perturb(t, 1.04) for t in evaluator.performance._traces[api]]
        report = DriftReport(
            api=api, baseline_divergence=0.1, recent_divergence=2.0, threshold_factor=5.0
        )
        update = DriftScenarioUpdate(
            reports={api: report},
            scenario=None,
            refreshed_traces={api: refreshed},
        )
        assert update.needs_recertification
        certificate = atlas.recertify(recommendation, executed, update, budget=6)
        assert certificate is not None
        assert recommendation.certificate is certificate
        # The refreshed traces were installed in place (splice, not invalidate).
        assert evaluator.performance._traces[api] == refreshed[-15:]
