"""Golden fixed-seed fingerprint registry shared by the whole test suite.

Every refactor PR in this repo has been held to the same contract: fixed-seed
search trajectories are sha256-fingerprinted and compared *in-session* between two
independently built stacks (never against hardcoded hashes), so any byte-level
behaviour change — a reordered float sum, an extra RNG draw, a cache leak — fails
loudly.  The helpers and golden runs here used to be copy-pasted across
``test_problem.py``, ``test_scenarios.py``, ``test_multi_location.py`` and
``test_faults.py``; they now live in one place, and ``test_fingerprints.py`` is the
single parametrized suite that pins them (including the ``islands=1 ≡ serial``
contract of the parallel island search).

Helpers fingerprint *values*, not object identities: plan vectors, ``repr`` of the
objective tuples (full float precision), feasibility and violation strings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

from repro.cluster import MigrationPlan, default_network_model
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.optimizer import AtlasGA, GAConfig
from repro.optimizer.baselines import (
    AffinityNSGA2Baseline,
    BaselineContext,
    RandomSearchBaseline,
)
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
)

__all__ = [
    "fingerprint_payload",
    "fingerprint_qualities",
    "fingerprint_front",
    "fingerprint_search_result",
    "fingerprint_scenario_entries",
    "fingerprint_certificate",
    "build_tiny_evaluator",
    "make_baseline_context",
    "GOLDEN_GA",
    "GOLDEN_RUNS",
]


# -- fingerprint helpers ---------------------------------------------------------------------
def fingerprint_payload(payload) -> str:
    """sha256 of the JSON encoding of an already-serializable payload."""
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()


def fingerprint_qualities(qualities) -> str:
    """Canonical fingerprint of a sequence of ``PlanQuality`` results.

    Captures the plan vector, the exact objective floats (via ``repr``), the
    feasibility bit and the violation strings of every entry, in order.
    """
    payload = [
        (
            tuple(q.plan.to_vector()),
            repr(tuple(q.objectives())),
            q.feasible,
            list(q.violations),
        )
        for q in qualities
    ]
    return fingerprint_payload(payload)


def fingerprint_front(result) -> str:
    """Fingerprint of an ``AffinityNSGA2Result`` (plans + internal objectives)."""
    payload = [
        (tuple(p.to_vector()), repr(tuple(o)))
        for p, o in zip(result.plans, result.objectives)
    ]
    return fingerprint_payload(payload)


def fingerprint_search_result(result) -> str:
    """Full-trajectory fingerprint of a ``SearchResult``.

    Covers the Pareto front, every plan the run evaluated (``all_evaluated`` — the
    strongest trajectory witness), the final population and the evaluation/
    generation counters.
    """
    payload = {
        "pareto": fingerprint_qualities(result.pareto),
        "all_evaluated": fingerprint_qualities(result.all_evaluated),
        "final_population": fingerprint_qualities(result.final_population),
        "evaluations": result.evaluations,
        "generations": result.generations,
    }
    return fingerprint_payload(payload)


def fingerprint_scenario_entries(quality, names) -> str:
    """Fingerprint of the named per-scenario breakdown entries of one result."""
    by_name = {entry.scenario: entry for entry in quality.scenarios}
    payload = [
        (
            name,
            repr(tuple(by_name[name].objectives())),
            by_name[name].feasible,
            list(by_name[name].violations),
        )
        for name in names
    ]
    return fingerprint_payload(payload)


def fingerprint_certificate(certificate) -> str:
    """Fingerprint of a ``RobustnessCertificate`` (worst spec, regrets, budget)."""
    payload = {
        "worst_spec": repr(certificate.worst_spec.compile_key()),
        "worst_regret": repr(certificate.worst_regret),
        "worst_values": repr(tuple(certificate.worst_values)),
        "budget_spent": certificate.budget_spent,
    }
    return fingerprint_payload(payload)


# -- tiny golden stack -----------------------------------------------------------------------
def build_tiny_evaluator(app, telemetry, problem=None, preferences=None):
    """A fresh evaluator of the tiny app, identical to the historical test stacks.

    Rebuilt from scratch on every call (models, caches, RNG-free), so two
    invocations give two independent stacks whose fixed-seed runs must fingerprint
    identically.
    """
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)
    limit = estimate.peak("cpu_millicores", app.component_names) * 0.8
    performance = ApiPerformanceModel(
        traces_by_api={api: p.sample_traces for api, p in profiles.items()},
        footprint=footprint,
        network=default_network_model(),
        baseline_plan=baseline,
        traces_per_api=20,
    )
    availability = ApiAvailabilityModel(
        {api: p.stateful_components for api, p in profiles.items()}, baseline
    )
    cost = CloudCostModel(
        PricingCatalog(),
        estimate,
        footprint,
        {c.name: c.resources.storage_gb for c in app.components},
        baseline,
        time_compression=288.0,
    )
    if preferences is None:
        preferences = MigrationPreferences.pin_on_prem(
            ["Database"], onprem_limits={"cpu_millicores": limit}
        )
    return QualityEvaluator(
        performance=performance,
        availability=availability,
        cost=cost,
        preferences=preferences,
        estimate=estimate,
        component_order=app.component_names,
        estimator=estimator,
        problem=problem,
    )


def make_baseline_context(app, telemetry, evaluator) -> BaselineContext:
    return BaselineContext(
        components=app.component_names,
        evaluator=evaluator,
        traffic_matrix=telemetry.traffic_matrix(),
        message_matrix={},
        busyness={},
    )


#: The golden GA hyperparameters every suite shares (the historical TINY_GA).
GOLDEN_GA = GAConfig(
    population_size=16,
    offspring_per_generation=8,
    evaluation_budget=220,
    train_iterations=20,
    train_batch_size=2,
    train_pairs=8,
    seed=11,
)


# -- golden runs -----------------------------------------------------------------------------
def _run_atlas_ga(app, telemetry, **overrides) -> str:
    config = replace(GOLDEN_GA, **overrides) if overrides else GOLDEN_GA
    evaluator = build_tiny_evaluator(app, telemetry)
    result = AtlasGA(evaluator, app.component_names, config=config).run()
    return fingerprint_search_result(result)


def _run_atlas_ga_uniform(app, telemetry) -> str:
    return _run_atlas_ga(app, telemetry, crossover="uniform")


def _run_nsga2(app, telemetry) -> str:
    evaluator = build_tiny_evaluator(app, telemetry)
    result = AffinityNSGA2Baseline(
        make_baseline_context(app, telemetry, evaluator),
        population_size=16,
        evaluation_budget=160,
        seed=5,
    ).recommend()
    return fingerprint_front(result)


def _run_random_search(app, telemetry) -> str:
    evaluator = build_tiny_evaluator(app, telemetry)
    front = RandomSearchBaseline(
        make_baseline_context(app, telemetry, evaluator),
        evaluation_budget=150,
        seed=9,
    ).recommend()
    return fingerprint_qualities(front)


#: name -> runner(app, telemetry) -> fingerprint.  Each runner builds its stack
#: from scratch, so calling it twice compares two fully independent builds.
GOLDEN_RUNS = {
    "atlas-ga": _run_atlas_ga,
    "atlas-ga-uniform": _run_atlas_ga_uniform,
    "nsga2-affinity": _run_nsga2,
    "random-search": _run_random_search,
}
