"""Shared fixtures for the test suite.

Most tests run against a deliberately tiny application (6 components, 2 APIs) so the
whole suite stays fast; a handful of integration tests use the full social network
through a session-scoped simulated telemetry fixture.
"""

from __future__ import annotations

import pytest

from repro.apps import (
    ApiEndpoint,
    Application,
    CallNode,
    Component,
    ExecutionMode,
    PayloadSpec,
    ResourceProfile,
    build_hotel_reservation,
    build_social_network,
)
from repro.cluster import MigrationPlan, default_hybrid_cluster, default_network_model
from repro.simulator import simulate_workload
from repro.workload import WorkloadGenerator, default_scenario


def make_tiny_app() -> Application:
    """A 6-component, 2-API application exercising all three workflow patterns."""
    service = ResourceProfile(
        cpu_millicores_idle=10.0,
        cpu_millicores_per_rps=5.0,
        memory_mb_idle=32.0,
        memory_mb_per_rps=0.2,
    )
    db = ResourceProfile(
        cpu_millicores_idle=20.0,
        cpu_millicores_per_rps=8.0,
        memory_mb_idle=128.0,
        memory_mb_per_rps=0.4,
        storage_gb=10.0,
    )
    components = [
        Component("Frontend", resources=service),
        Component("ServiceA", resources=service),
        Component("ServiceB", resources=service),
        Component("Cache", resources=service),
        Component("Database", stateful=True, resources=db),
        Component("Notifier", resources=service),
    ]

    # /read: Frontend -> ServiceA -> (Cache || Database), notifier in background.  The
    # notifier runs long enough to outlive its parent so traces expose the background
    # pattern the same way WriteHomeTimelineService does in the paper.
    cache = CallNode("Cache", "Get", work_ms=0.4, payload=PayloadSpec(100.0, 900.0))
    database = CallNode("Database", "Find", work_ms=1.5, payload=PayloadSpec(150.0, 1_200.0))
    notifier = CallNode("Notifier", "LogAccess", work_ms=25.0, payload=PayloadSpec(80.0, 10.0))
    service_a = CallNode("ServiceA", "Read", work_ms=1.0, payload=PayloadSpec(200.0, 1_500.0))
    service_a.call(cache, ExecutionMode.PARALLEL, gap_ms=0.1)
    service_a.call(database, ExecutionMode.PARALLEL, gap_ms=0.1)
    service_a.call(notifier, ExecutionMode.BACKGROUND, gap_ms=0.1)
    read_root = CallNode("Frontend", "/read", work_ms=0.8, payload=PayloadSpec(300.0, 2_000.0))
    read_root.call(service_a, ExecutionMode.SEQUENTIAL, gap_ms=0.2)

    # /write: Frontend -> ServiceB -> Database (sequential), Cache refresh in background.
    database_w = CallNode("Database", "Insert", work_ms=2.0, payload=PayloadSpec(800.0, 60.0))
    cache_w = CallNode("Cache", "Invalidate", work_ms=8.0, payload=PayloadSpec(120.0, 10.0))
    service_b = CallNode("ServiceB", "Write", work_ms=1.2, payload=PayloadSpec(900.0, 100.0))
    service_b.call(database_w, ExecutionMode.SEQUENTIAL, gap_ms=0.2)
    service_b.call(cache_w, ExecutionMode.BACKGROUND, gap_ms=0.1)
    write_root = CallNode("Frontend", "/write", work_ms=0.7, payload=PayloadSpec(1_000.0, 150.0))
    write_root.call(service_b, ExecutionMode.SEQUENTIAL, gap_ms=0.2)

    apis = [
        ApiEndpoint("/read", read_root, weight=0.7),
        ApiEndpoint("/write", write_root, weight=0.3),
    ]
    return Application("tiny-app", components, apis)


@pytest.fixture()
def tiny_app() -> Application:
    return make_tiny_app()


@pytest.fixture(scope="session")
def social_app() -> Application:
    return build_social_network()


@pytest.fixture(scope="session")
def hotel_app() -> Application:
    return build_hotel_reservation()


@pytest.fixture(scope="session")
def tiny_telemetry():
    """Simulated telemetry of the tiny app under a short all-on-prem workload."""
    app = make_tiny_app()
    scenario = default_scenario(app, base_rps=20.0, peak_rps=30.0, duration_ms=60_000.0)
    requests = WorkloadGenerator(app, scenario, seed=3).generate(60_000.0)
    result = simulate_workload(app, requests, seed=3)
    return app, result


@pytest.fixture(scope="session")
def social_learning_result():
    """Simulated learning telemetry of the full social network (session-scoped)."""
    app = build_social_network()
    scenario = default_scenario(app, base_rps=10.0, peak_rps=18.0, duration_ms=60_000.0)
    requests = WorkloadGenerator(app, scenario, seed=5).generate(60_000.0)
    result = simulate_workload(app, requests, seed=5)
    return app, result


@pytest.fixture()
def default_cluster():
    return default_hybrid_cluster()


@pytest.fixture()
def default_network():
    return default_network_model()


@pytest.fixture()
def tiny_plan_all_onprem(tiny_app):
    return MigrationPlan.all_on_prem(tiny_app.component_names)
