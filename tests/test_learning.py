"""Tests for application learning: profiles, footprint learning, resource estimation."""

import pytest

from repro.apps import ExecutionMode
from repro.learning import (
    ApiProfiler,
    ComponentProfiler,
    FootprintLearner,
    NetworkFootprint,
    ResourceEstimator,
    classify_background,
    classify_sibling,
)
from repro.learning.footprint import EdgeFootprint
from repro.telemetry import Span


class TestWorkflowClassification:
    def test_parallel_siblings_detected(self):
        a = Span("t", "a", "root", "A", "op", 0.0, 10.0)
        b = Span("t", "b", "root", "B", "op", 1.0, 10.0)
        assert classify_sibling(a, b) is ExecutionMode.PARALLEL

    def test_sequential_siblings_detected(self):
        a = Span("t", "a", "root", "A", "op", 0.0, 5.0)
        b = Span("t", "b", "root", "B", "op", 6.0, 5.0)
        assert classify_sibling(a, b) is ExecutionMode.SEQUENTIAL

    def test_background_child_detected(self):
        parent = Span("t", "p", None, "P", "op", 0.0, 10.0)
        child = Span("t", "c", "p", "C", "op", 8.0, 20.0)
        inline = Span("t", "d", "p", "D", "op", 2.0, 3.0)
        assert classify_background(child, parent)
        assert not classify_background(inline, parent)


class TestApiProfiler:
    def test_profiles_all_apis(self, tiny_telemetry):
        app, result = tiny_telemetry
        profiler = ApiProfiler(result.telemetry, stateful_components=app.stateful_components())
        profiles = profiler.profile_all()
        assert set(profiles) == {"/read", "/write"}

    def test_profile_contents(self, tiny_telemetry):
        app, result = tiny_telemetry
        profiler = ApiProfiler(result.telemetry, stateful_components=app.stateful_components())
        profile = profiler.profile("/read")
        assert profile.request_count > 0
        assert set(profile.components) == app.components_of_api("/read")
        assert profile.stateful_components == ["Database"]
        assert profile.mean_latency_ms > 0
        assert profile.p95_latency_ms >= profile.mean_latency_ms * 0.5
        assert profile.uses_component("Cache")
        assert not profile.uses_component("ServiceB")

    def test_invocations_per_request(self, tiny_telemetry):
        app, result = tiny_telemetry
        profile = ApiProfiler(result.telemetry).profile("/read")
        assert profile.invocations_per_request[("Frontend", "ServiceA")] == pytest.approx(1.0)

    def test_workflow_modes_recovered_from_timestamps(self, tiny_telemetry):
        app, result = tiny_telemetry
        profile = ApiProfiler(result.telemetry).profile("/read")
        assert profile.background_components() == {"Notifier"}
        modes = {
            (parent, child): mode
            for (parent, child, _op), mode in profile.workflow_modes.items()
        }
        assert modes[("ServiceA", "Cache")] is ExecutionMode.PARALLEL
        assert modes[("ServiceA", "Database")] is ExecutionMode.PARALLEL

    def test_sample_traces_limited(self, tiny_telemetry):
        app, result = tiny_telemetry
        profile = ApiProfiler(result.telemetry, traces_per_api=5).profile("/read")
        assert len(profile.sample_traces) == 5

    def test_unknown_api_raises(self, tiny_telemetry):
        _app, result = tiny_telemetry
        with pytest.raises(ValueError):
            ApiProfiler(result.telemetry).profile("/ghost")

    def test_latency_histogram(self, tiny_telemetry):
        _app, result = tiny_telemetry
        profile = ApiProfiler(result.telemetry).profile("/read")
        edges, counts = profile.latency_histogram(bins=10)
        assert len(edges) == 11
        assert sum(counts) == profile.request_count


class TestComponentProfiler:
    def test_profiles_reflect_activity(self, tiny_telemetry):
        app, result = tiny_telemetry
        profiler = ComponentProfiler(result.telemetry, app)
        profiles = profiler.profile_all()
        assert set(profiles) == set(app.component_names)
        frontend = profiles["Frontend"]
        assert frontend.mean_cpu_millicores > 0
        assert frontend.mean_request_rate > 0
        assert not frontend.stateful
        assert profiles["Database"].stateful
        assert profiles["Database"].storage_gb == 10.0

    def test_rankings(self, tiny_telemetry):
        app, result = tiny_telemetry
        profiler = ComponentProfiler(result.telemetry, app)
        by_busy = profiler.ranked_by_busyness()
        assert by_busy[0].busyness >= by_busy[-1].busyness
        by_traffic = profiler.ranked_by_traffic()
        assert by_traffic[0].total_traffic_bytes >= by_traffic[-1].total_traffic_bytes

    def test_apis_attributed(self, tiny_telemetry):
        app, result = tiny_telemetry
        profile = ComponentProfiler(result.telemetry, app).profile("ServiceB")
        assert profile.apis == ["/write"]


class TestFootprintLearner:
    def test_recovers_payload_sizes(self, tiny_telemetry):
        app, result = tiny_telemetry
        footprint = FootprintLearner(result.telemetry).learn()
        edge = app.api("/write").root.calls[0].node  # ServiceB
        db_edge = edge.calls[0].node  # Database Insert
        learned_req = footprint.request_bytes("/write", "ServiceB", "Database")
        assert learned_req == pytest.approx(db_edge.payload.request_bytes, rel=0.2)

    def test_footprint_zero_for_unused_pair(self, tiny_telemetry):
        _app, result = tiny_telemetry
        footprint = FootprintLearner(result.telemetry).learn()
        assert footprint.request_bytes("/write", "ServiceA", "Cache") == 0.0

    def test_round_trip_bytes(self, tiny_telemetry):
        _app, result = tiny_telemetry
        footprint = FootprintLearner(result.telemetry).learn()
        total = footprint.round_trip_bytes("/read", "ServiceA", "Database")
        assert total == pytest.approx(
            footprint.request_bytes("/read", "ServiceA", "Database")
            + footprint.response_bytes("/read", "ServiceA", "Database")
        )

    def test_accuracy_against_ground_truth_high(self, tiny_telemetry):
        app, result = tiny_telemetry
        footprint = FootprintLearner(result.telemetry).learn()
        reference = {}
        for api in app.apis:
            reference[api.name] = {
                (src, dst): (node.payload.request_bytes, node.payload.response_bytes)
                for src, dst, node, _m in api.edges()
            }
        accuracy = footprint.accuracy_against(reference)
        assert all(acc > 70.0 for acc in accuracy.values())

    def test_expected_pair_traffic(self):
        footprint = NetworkFootprint(
            [EdgeFootprint("/a", "X", "Y", 100.0, 50.0), EdgeFootprint("/b", "X", "Y", 10.0, 5.0)]
        )
        traffic = footprint.expected_pair_traffic({"/a": 2, "/b": 10})
        assert traffic[("X", "Y")] == pytest.approx(2 * 150 + 10 * 15)

    def test_requires_enough_windows(self, tiny_telemetry):
        _app, result = tiny_telemetry
        with pytest.raises(ValueError):
            FootprintLearner(result.telemetry, min_windows=1_000).learn()

    def test_edges_of_and_pairs(self, tiny_telemetry):
        _app, result = tiny_telemetry
        footprint = FootprintLearner(result.telemetry).learn()
        assert ("Frontend", "ServiceA") in footprint.pairs()
        assert ("Frontend", "ServiceA") in footprint.edges_of("/read")


class TestResourceEstimator:
    def test_requires_fit_before_predict(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry)
        with pytest.raises(RuntimeError):
            estimator.predict_scaled(1.0)

    def test_prediction_scales_with_traffic(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        one = estimator.predict_scaled(1.0)
        five = estimator.predict_scaled(5.0)
        names = app.component_names
        assert five.peak("cpu_millicores", names) > one.peak("cpu_millicores", names)

    def test_attribution_maps_apis_to_components(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        attribution = estimator.attribution("cpu_millicores", "ServiceB")
        # ServiceB only serves /write, so /write should carry (almost all of) the weight.
        assert attribution["/write"] >= attribution["/read"]

    def test_predict_with_explicit_rates(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        estimate = estimator.predict({"/read": [10.0, 20.0], "/write": [5.0, 5.0]})
        assert estimate.steps == 2
        series = estimate.component_series("cpu_millicores", "Frontend")
        assert len(series) == 2 and series[1] >= series[0]

    def test_storage_usage_constant(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        estimate = estimator.predict_scaled(2.0)
        storage = estimate.component_series("storage_gb", "Database")
        assert all(v == pytest.approx(10.0) for v in storage)

    def test_aggregate_series_subsets(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        estimate = estimator.predict_scaled(1.0)
        total = estimate.peak("cpu_millicores", app.component_names)
        partial = estimate.peak("cpu_millicores", ["Frontend"])
        assert partial <= total

    def test_rejects_empty_rates(self, tiny_telemetry):
        app, result = tiny_telemetry
        estimator = ResourceEstimator(app, result.telemetry).fit()
        with pytest.raises(ValueError):
            estimator.predict({})
