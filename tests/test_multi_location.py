"""N-location topology invariants.

Three laws anchor the multi-location generalization:

1. **Degeneration** (property-based): a 3-location quality stack whose third site is
   unreachable/priced out scores every two-location plan *identically* to the
   two-location stack — adding an unused region never perturbs the objectives.
2. **Engine equivalence**: the compiled replay engine matches the recursive
   ``DelayInjector`` oracle on 3-location topologies exactly, like it does on two.
3. **Two-location invariance**: running the searchers with an explicit
   ``locations=(0, 1)`` is bit-for-bit the same as the historical binary path, so
   fixed-seed 2-DC runs reproduce pre-N-location results.
"""

import numpy as np
import pytest
from fingerprints import fingerprint_qualities, fingerprint_search_result
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CLOUD,
    ON_PREM,
    MigrationPlan,
    NodeSpec,
    default_multi_location_cluster,
    default_multi_location_network,
    default_network_model,
)
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.optimizer import AtlasGA, GAConfig, RandomSearchBaseline
from repro.optimizer.baselines import BaselineContext
from repro.optimizer.drl.agent import CrossoverAgent
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
)

THREE_LOCATIONS = (0, 1, 2)

#: A third region so expensive that any plan touching it blows any sane budget.
PRICED_OUT = PricingCatalog(
    node_spec=NodeSpec(
        name="unobtainium",
        cpu_millicores=2_000.0,
        memory_mb=8_192.0,
        hourly_price_usd=1e9,
    ),
    storage_usd_per_gb_month=1e9,
    egress_usd_per_gb=1e9,
)


@pytest.fixture(scope="module")
def tiny_stack(tiny_telemetry):
    """Learned models of the tiny app plus an evaluator factory over any topology."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)

    def build_evaluator(
        locations=(ON_PREM, CLOUD),
        catalogs=None,
        location_weights=None,
        engine="compiled",
        preferences=None,
    ):
        if len(locations) == 2:
            network = default_network_model()
        else:
            network = default_multi_location_network(locations=locations)
        performance = ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=network,
            baseline_plan=baseline,
            traces_per_api=20,
            engine=engine,
        )
        availability = ApiAvailabilityModel(
            {api: p.stateful_components for api, p in profiles.items()},
            baseline,
            location_weights=location_weights,
        )
        cost = CloudCostModel(
            PricingCatalog(),
            estimate,
            footprint,
            {c.name: c.resources.storage_gb for c in app.components},
            baseline,
            time_compression=288.0,
            catalogs=catalogs,
        )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences or MigrationPreferences(),
            estimate=estimate,
            component_order=app.component_names,
        )

    return app, build_evaluator


def _plan(app, vector):
    return MigrationPlan.from_vector(app.component_names, list(vector))


class TestDegeneration:
    """Adding an unreachable/priced-out third site must not change anything."""

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=6, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_two_location_plans_score_identically(self, tiny_stack, vector):
        app, build_evaluator = tiny_stack
        two_dc = build_evaluator(locations=(ON_PREM, CLOUD))
        three_dc = build_evaluator(
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: PRICED_OUT},
            location_weights={CLOUD: 1.0, 2: 5.0},
        )
        plan = _plan(app, vector)
        got = three_dc.evaluate(plan)
        want = two_dc.evaluate(plan)
        assert got.objectives() == want.objectives()
        assert got.feasible == want.feasible
        assert got.violations == want.violations

    def test_priced_out_region_is_infeasible_under_budget(self, tiny_stack):
        app, build_evaluator = tiny_stack
        preferences = MigrationPreferences(budget_usd=1e6)
        three_dc = build_evaluator(
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: PRICED_OUT},
            preferences=preferences,
        )
        for component in app.component_names:
            plan = MigrationPlan.all_on_prem(app.component_names).with_location(
                component, 2
            )
            assert not three_dc.is_feasible(plan)

    def test_search_degenerates_when_third_site_priced_out(self, tiny_stack):
        """The 3-location GA never keeps a plan on the priced-out site, and every plan
        it returns scores exactly as the plain two-location stack scores it."""
        app, build_evaluator = tiny_stack
        preferences = MigrationPreferences(budget_usd=1e6)
        three_dc = build_evaluator(
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: PRICED_OUT},
            preferences=preferences,
        )
        config = GAConfig(
            population_size=12,
            offspring_per_generation=6,
            evaluation_budget=160,
            max_generations=10,
            train_iterations=5,
            train_batch_size=2,
            train_pairs=8,
            seed=3,
        )
        result = AtlasGA(
            three_dc, app.component_names, config, locations=THREE_LOCATIONS
        ).run()
        assert result.pareto, "the search must still find feasible plans"
        two_dc = build_evaluator(locations=(ON_PREM, CLOUD), preferences=preferences)
        for quality in result.pareto:
            assert set(quality.plan.locations_used()) <= {ON_PREM, CLOUD}
            assert quality.objectives() == two_dc.evaluate(quality.plan).objectives()


class TestEngineEquivalenceThreeLocations:
    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=6, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_compiled_matches_oracle(self, tiny_stack, vector):
        app, build_evaluator = tiny_stack
        compiled = build_evaluator(locations=THREE_LOCATIONS, engine="compiled")
        reference = build_evaluator(locations=THREE_LOCATIONS, engine="reference")
        plan = _plan(app, vector)
        got = compiled.evaluate(plan)
        want = reference.evaluate(plan)
        assert got.objectives() == want.objectives()  # bitwise, like the 2-DC contract
        for api in compiled.performance.apis:
            assert compiled.performance.estimate_latencies(
                api, plan
            ) == reference.performance.estimate_latencies(api, plan)


class TestTwoLocationInvariance:
    """Explicit ``locations=(0, 1)`` must be byte-identical to the historical path."""

    def test_atlas_ga_fixed_seed_trajectory_unchanged(self, tiny_stack):
        app, build_evaluator = tiny_stack
        config = GAConfig(
            population_size=10,
            offspring_per_generation=5,
            evaluation_budget=120,
            max_generations=8,
            train_iterations=5,
            train_batch_size=2,
            train_pairs=8,
            seed=7,
        )
        implicit = AtlasGA(build_evaluator(), app.component_names, config).run()
        explicit = AtlasGA(
            build_evaluator(), app.component_names, config, locations=(ON_PREM, CLOUD)
        ).run()
        assert fingerprint_search_result(implicit) == fingerprint_search_result(
            explicit
        )

    def test_crossover_agent_binary_path_unchanged(self):
        binary = CrossoverAgent(n_components=5, hidden_dims=(8,), seed=4)
        explicit = CrossoverAgent(
            n_components=5, hidden_dims=(8,), seed=4, locations=(0, 1)
        )
        parent_a, parent_b = [0, 1, 0, 1, 1], [1, 0, 0, 1, 0]
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        assert binary.crossover(parent_a, parent_b, rng_a) == explicit.crossover(
            parent_a, parent_b, rng_b
        )

    def test_random_search_binary_path_unchanged(self, tiny_stack):
        app, build_evaluator = tiny_stack

        def run(locations):
            evaluator = build_evaluator()
            context = BaselineContext(
                components=app.component_names,
                evaluator=evaluator,
                traffic_matrix={},
                locations=locations,
            )
            front = RandomSearchBaseline(context, evaluation_budget=60, seed=2).recommend()
            return fingerprint_qualities(front)

        assert run((ON_PREM, CLOUD)) == run((0, 1))


class TestMultiLocationSearch:
    def test_agent_emits_all_locations_and_respects_pins(self):
        agent = CrossoverAgent(
            n_components=8,
            hidden_dims=(16,),
            seed=0,
            locations=THREE_LOCATIONS,
            pinned={0: ON_PREM, 7: 2},
        )
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(60):
            child = agent.crossover([0, 1, 2, 0, 1, 2, 0, 1], [2, 1, 0, 2, 1, 0, 2, 1], rng)
            assert child[0] == ON_PREM and child[7] == 2
            seen.update(child)
            assert set(child) <= set(THREE_LOCATIONS)
        assert seen == set(THREE_LOCATIONS)

    def test_agent_rejects_pins_outside_location_set(self):
        with pytest.raises(ValueError, match="pinned locations"):
            CrossoverAgent(
                n_components=4, hidden_dims=(8,), locations=THREE_LOCATIONS,
                pinned={1: 7},
            )

    def test_ga_rejects_pins_outside_location_set(self, tiny_stack):
        app, build_evaluator = tiny_stack
        stateful = sorted(app.stateful_components())
        preferences = MigrationPreferences(pinned_placement={stateful[0]: 7})
        evaluator = build_evaluator(
            locations=THREE_LOCATIONS, preferences=preferences
        )
        with pytest.raises(ValueError, match="outside the search"):
            AtlasGA(
                evaluator, app.component_names, GAConfig(seed=0),
                locations=THREE_LOCATIONS,
            )

    def test_agent_training_improves_nothing_but_runs(self, tiny_stack):
        """Categorical training must run end to end and keep pins fixed."""
        agent = CrossoverAgent(
            n_components=6, hidden_dims=(8,), seed=1, locations=THREE_LOCATIONS,
            pinned={2: ON_PREM},
        )
        pairs = [([0, 1, 0, 2, 1, 0], [2, 0, 1, 0, 2, 1])]

        def reward(child, _a, _b):
            assert child[2] == ON_PREM
            return 1.0 if child.count(ON_PREM) >= 2 else -1.0

        history = agent.train(pairs, reward, iterations=5, batch_size=2)
        assert len(history.mean_rewards) == 5

    def test_ga_explores_every_location(self, tiny_stack):
        app, build_evaluator = tiny_stack
        evaluator = build_evaluator(
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: PricingCatalog()},
        )
        config = GAConfig(
            population_size=12,
            offspring_per_generation=6,
            evaluation_budget=150,
            max_generations=8,
            train_iterations=4,
            train_batch_size=2,
            train_pairs=8,
            seed=5,
        )
        result = AtlasGA(
            evaluator, app.component_names, config, locations=THREE_LOCATIONS
        ).run()
        visited = set()
        for quality in result.all_evaluated:
            visited.update(quality.plan.locations_used())
        assert visited == set(THREE_LOCATIONS)

    def test_affinity_seed_cut_accounting_with_third_site_pin(self):
        """A neighbour pinned to a third site crosses the cut on *both* sides of a
        toggle, so it must never make a move look cut-reducing."""
        from repro.optimizer.atlas_ga import affinity_seed_vectors

        components = ["a", "b", "p"]
        seeds = affinity_seed_vectors(
            components=components,
            pinned={"p": 2},
            # a<->p dominates but is cross-site whatever a does; a<->b is local and
            # would be cut by offloading a.
            pair_traffic={("a", "p"): 100.0, ("a", "b"): 10.0},
            is_feasible=lambda plan: True,
            rng=np.random.default_rng(0),
            count=2,
            locations=THREE_LOCATIONS,
        )
        for seed in seeds:
            # Offloading "a" would add 10 bytes of cut; the pinned edge is a wash.
            assert seed == [ON_PREM, ON_PREM, 2]

    def test_all_evaluated_scoped_to_one_run(self, tiny_stack):
        app, build_evaluator = tiny_stack
        evaluator = build_evaluator()
        config = GAConfig(
            population_size=8,
            offspring_per_generation=4,
            evaluation_budget=60,
            max_generations=4,
            train_iterations=3,
            train_batch_size=2,
            train_pairs=6,
            seed=11,
        )
        first = AtlasGA(evaluator, app.component_names, config).run()
        config_b = GAConfig(
            population_size=8,
            offspring_per_generation=4,
            evaluation_budget=120,
            max_generations=4,
            train_iterations=3,
            train_batch_size=2,
            train_pairs=6,
            seed=12,
        )
        second = AtlasGA(evaluator, app.component_names, config_b).run()
        # The two runs partition the shared evaluator's distinct-plan cache.
        assert len(first.all_evaluated) + len(second.all_evaluated) == evaluator.cache_size()

    def test_move_candidates_cover_all_targets(self, tiny_stack):
        app, build_evaluator = tiny_stack
        evaluator = build_evaluator(locations=THREE_LOCATIONS)
        ga = AtlasGA(
            evaluator, app.component_names, GAConfig(seed=0), locations=THREE_LOCATIONS
        )
        vector = [0] * len(app.component_names)
        moves = ga._move_candidates(vector)
        single_values = {tuple(m) for m in moves}
        # Every component can be moved to each of the two remote sites.
        for gene in range(len(vector)):
            for target in (1, 2):
                candidate = list(vector)
                candidate[gene] = target
                assert tuple(candidate) in single_values


class TestTopologyBuilders:
    def test_multi_location_cluster_shape(self):
        cluster = default_multi_location_cluster()
        assert cluster.location_ids == [0, 1, 2]
        assert [dc.name for dc in cluster.datacenters] == [
            "on-prem",
            "cloud-east",
            "cloud-west",
        ]
        assert [dc.location_id for dc in cluster.elastic_datacenters()] == [1, 2]
        assert [dc.location_id for dc in cluster.remote_datacenters()] == [1, 2]
        assert cluster.n_locations == 3

    def test_extra_regions_extend_location_ids(self):
        cluster = default_multi_location_cluster(
            extra_regions=[{"name": "edge", "region": "factory-floor"}]
        )
        assert cluster.location_ids == [0, 1, 2, 3]
        assert cluster.datacenter(3).name == "edge"

    def test_multi_location_network_is_dense_and_degenerates(self):
        network = default_multi_location_network(locations=(0, 1, 2))
        assert network.locations() == [0, 1, 2]
        for a in (0, 1, 2):
            for b in (0, 1, 2):
                assert network.has_link(a, b)
        two_dc = default_network_model()
        for pair in ((0, 0), (1, 1), (0, 1)):
            assert network.latency_ms(*pair) == two_dc.latency_ms(*pair)
            assert network.bandwidth_mbps(*pair) == two_dc.bandwidth_mbps(*pair)
        # The farther region is actually farther.
        assert network.latency_ms(0, 2) > network.latency_ms(0, 1)

    def test_plan_locations_used(self):
        plan = MigrationPlan({"a": 0, "b": 2, "c": 0, "d": 1})
        assert plan.locations_used() == [0, 1, 2]
        assert plan.components_at(2) == ["b"]
        assert sorted(plan.offloaded()) == ["b", "d"]


class TestMultiLocationQuality:
    def test_cost_bills_each_region_with_its_catalog(self, tiny_stack):
        app, build_evaluator = tiny_stack
        cheap_west = PricingCatalog(
            node_spec=NodeSpec(
                name="west", cpu_millicores=2_000.0, memory_mb=8_192.0,
                hourly_price_usd=0.01,
            ),
            storage_usd_per_gb_month=0.01,
            egress_usd_per_gb=0.09,
        )
        evaluator = build_evaluator(
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: cheap_west},
        )
        components = app.component_names
        east = MigrationPlan.from_vector(components, [1] * len(components))
        west = MigrationPlan.from_vector(components, [2] * len(components))
        east_cost = evaluator.cost.qcost(east)
        west_cost = evaluator.cost.qcost(west)
        assert west_cost < east_cost  # same demand, cheaper nodes/storage
        by_location = evaluator.cost.node_series_by_location(east)
        assert set(by_location) == {CLOUD, 2}
        assert sum(by_location[2]) == 0  # nothing placed west under the east plan

    def test_cloud_egress_only_bills_each_endpoint_site(self, tiny_stack):
        """With per-endpoint egress billing, request bytes are charged at the caller's
        site rate and response bytes at the callee's; the 2-DC single-catalog path
        matches the flat-rate accounting for plans with one billable endpoint."""
        app, build_evaluator = tiny_stack
        flat = build_evaluator().cost
        endpoint = build_evaluator().cost
        endpoint.charge_cloud_egress_only = True
        components = app.component_names
        # One component in the cloud: every cross edge has exactly one billable side,
        # so the endpoint accounting bills a subset of the flat-rate bytes.
        plan = MigrationPlan.from_offloaded(components, [components[0]])
        assert 0.0 < endpoint.traffic_cost(plan) <= flat.traffic_cost(plan)

    def test_footprint_cross_location_traffic_matrix(self, tiny_stack):
        app, build_evaluator = tiny_stack
        evaluator = build_evaluator(locations=THREE_LOCATIONS)
        footprint = evaluator.cost.footprint
        counts = {api: 10.0 for api in evaluator.performance.apis}
        components = app.component_names
        collocated = MigrationPlan.all_on_prem(components)
        assert footprint.expected_cross_location_traffic(collocated, counts) == {}
        split = MigrationPlan.from_offloaded(components, [components[0]], location=2)
        loads = footprint.expected_cross_location_traffic(split, counts)
        assert loads, "splitting a communicating component must load some link"
        assert all(a != b for a, b in loads)
        assert set(sum(([a, b] for a, b in loads), [])) <= {0, 2}
        assert all(v > 0 for v in loads.values())
        # Conservation: summed link load equals the flat pair-traffic restricted to
        # cross-location pairs.
        pair_traffic = footprint.expected_pair_traffic(counts)
        expected = sum(
            bytes_
            for (src, dst), bytes_ in pair_traffic.items()
            if split[src] != split[dst]
        )
        assert sum(loads.values()) == pytest.approx(expected)

    def test_availability_weights_scale_with_destination(self, tiny_stack):
        app, build_evaluator = tiny_stack
        weighted = build_evaluator(
            locations=THREE_LOCATIONS,
            location_weights={CLOUD: 1.0, 2: 3.0},
        ).availability
        stateful = sorted(app.stateful_components())
        assert stateful, "tiny app must have a stateful component"
        base = MigrationPlan.all_on_prem(app.component_names)
        near = base.with_location(stateful[0], CLOUD)
        far = base.with_location(stateful[0], 2)
        assert weighted.qavai(far) == 3.0 * weighted.qavai(near)
        assert weighted.disruption_factor("/read", far) in (0.0, 3.0)
