"""Tests for post-migration monitoring: KL drift detection and breach detection."""

import numpy as np
import pytest

from repro.learning.footprint import EdgeFootprint, NetworkFootprint
from repro.monitoring import BreachDetector, DriftDetector, kl_divergence


class TestKLDivergence:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        samples = list(rng.normal(100, 5, size=500))
        assert kl_divergence(samples, samples) < 0.05

    def test_shifted_distribution_has_larger_divergence(self):
        rng = np.random.default_rng(1)
        ref = list(rng.normal(100, 5, size=500))
        close = list(rng.normal(101, 5, size=500))
        far = list(rng.normal(160, 5, size=500))
        assert kl_divergence(ref, far) > kl_divergence(ref, close)

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        a = list(rng.normal(10, 1, size=200))
        b = list(rng.normal(12, 2, size=200))
        assert kl_divergence(a, b) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            kl_divergence([], [1.0])
        with pytest.raises(ValueError):
            kl_divergence([1.0], [1.0], bins=1)


class TestDriftDetector:
    def _detector(self, threshold=5.0):
        rng = np.random.default_rng(3)
        real = {"/a": list(rng.normal(100, 8, size=400))}
        approx = {"/a": list(rng.normal(102, 8, size=400))}
        return DriftDetector(approx, real, threshold_factor=threshold), rng

    def test_no_drift_for_similar_recent_samples(self):
        detector, rng = self._detector()
        recent = list(rng.normal(101, 8, size=300))
        report = detector.check("/a", recent)
        assert not report.drift_detected
        assert report.information_loss_factor < 5.0

    def test_drift_detected_for_shifted_distribution(self):
        detector, rng = self._detector()
        recent = list(rng.normal(220, 10, size=300))
        report = detector.check("/a", recent)
        assert report.drift_detected
        assert report.information_loss_factor > 5.0
        assert report.recent_divergence > report.baseline_divergence

    def test_check_all_and_drifted_apis(self):
        detector, rng = self._detector()
        recent = {"/a": list(rng.normal(250, 10, size=300))}
        reports = detector.check_all(recent)
        assert set(reports) == {"/a"}
        assert detector.drifted_apis(recent) == ["/a"]

    def test_unknown_api_rejected(self):
        detector, _rng = self._detector()
        with pytest.raises(KeyError):
            detector.check("/ghost", [1.0, 2.0])

    def test_mismatched_api_sets_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector({"/a": [1.0]}, {"/b": [1.0]})

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            DriftDetector({"/a": [1.0]}, {"/a": [1.0]}, threshold_factor=1.0)


class TestBreachDetector:
    def _footprint(self):
        return NetworkFootprint(
            [
                EdgeFootprint("/read", "Service", "Store", 200.0, 1_000.0),
                EdgeFootprint("/write", "Service", "Store", 800.0, 100.0),
            ]
        )

    def test_expected_traffic_reconstruction(self):
        detector = BreachDetector(self._footprint(), min_excess_bytes=1_000.0)
        expected = detector.expected_traffic({"/read": 10, "/write": 5})
        assert expected[("Service", "Store")] == pytest.approx(10 * 1_200 + 5 * 900)

    def test_normal_traffic_not_flagged(self):
        detector = BreachDetector(self._footprint(), min_excess_bytes=5_000.0)
        counts = {"/read": 10, "/write": 5}
        observed = {("Service", "Store"): 10 * 1_200 + 5 * 900 + 100.0}
        assert detector.scan_window(0, counts, observed) == []

    def test_exfiltration_flagged(self):
        detector = BreachDetector(self._footprint(), ratio_threshold=2.0, min_excess_bytes=5_000.0)
        counts = {"/read": 10, "/write": 5}
        observed = {("Service", "Store"): 500_000.0}
        anomalies = detector.scan_window(3, counts, observed)
        assert len(anomalies) == 1
        anomaly = anomalies[0]
        assert anomaly.window == 3
        assert anomaly.excess_bytes > 400_000
        assert anomaly.ratio > 2.0

    def test_scan_over_windows_and_breach_windows(self):
        detector = BreachDetector(self._footprint(), min_excess_bytes=5_000.0)
        counts = {0: {"/read": 10}, 1: {"/read": 10}}
        observed = {
            0: {("Service", "Store"): 12_000.0},
            1: {("Service", "Store"): 900_000.0},
        }
        anomalies = detector.scan(counts, observed)
        assert [a.window for a in anomalies] == [1]
        assert detector.breach_windows(counts, observed) == [1]

    def test_small_excess_ignored_even_if_ratio_high(self):
        detector = BreachDetector(self._footprint(), ratio_threshold=2.0, min_excess_bytes=1e9)
        anomalies = detector.scan_window(0, {"/read": 1}, {("Service", "Store"): 1e6})
        assert anomalies == []

    def test_validation(self):
        with pytest.raises(ValueError):
            BreachDetector(self._footprint(), ratio_threshold=1.0)
        with pytest.raises(ValueError):
            BreachDetector(self._footprint(), min_excess_bytes=-1.0)
