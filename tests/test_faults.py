"""Fault-injection, scenario-factory and adversarial-certification invariants.

Four laws anchor the robustness layer:

1. **Fault validity** — fault parameters are validated at construction (an outage
   can never *improve* a destination: ``availability_penalty >= 1``,
   ``latency_factor >= 1``, ``bandwidth_factor <= 1``), and unknown API names in a
   spec's factor maps raise at compile time.
2. **Fault monotonicity** (property-based) — a :class:`LocationOutage` never
   improves QPerf or QAvai relative to the fault-free baseline, for any plan and
   any admissible fault parameters.
3. **Fault-free identity** — specs without faults keep the exact pre-fault compile
   key shape and evaluate byte-identically whether or not faulted scenarios were
   compiled alongside them in the same evaluator.
4. **Adversary dominance** — the certificate's worst case scores at least the
   scalarized regret of every factory stress family (the families seed the search),
   and certification is deterministic for a fixed seed/budget.
"""

import pytest
from fingerprints import fingerprint_certificate, fingerprint_scenario_entries
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CLOUD,
    ON_PREM,
    MigrationPlan,
    NodeSpec,
    default_multi_location_network,
    default_network_model,
)
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.quality import (
    AdversaryBounds,
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CapacityCut,
    CloudCostModel,
    LinkDegradation,
    LocationOutage,
    MigrationPreferences,
    PriceShock,
    PricingCatalog,
    QualityEvaluator,
    ScenarioAdversary,
    ScenarioFactory,
    ScenarioSet,
    ScenarioSpec,
)

THREE_LOCATIONS = (ON_PREM, CLOUD, 2)


@pytest.fixture(scope="module")
def fault_stack(tiny_telemetry):
    """Learned models of the tiny app plus an evaluator factory (3-location capable)."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)
    limit = estimate.peak("cpu_millicores", app.component_names) * 1.1

    def build_evaluator(locations=THREE_LOCATIONS, preferences=None, with_estimator=True):
        network = (
            default_network_model()
            if len(locations) == 2
            else default_multi_location_network(locations=locations)
        )
        performance = ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=network,
            baseline_plan=baseline,
            traces_per_api=20,
        )
        availability = ApiAvailabilityModel(
            {api: p.stateful_components for api, p in profiles.items()}, baseline
        )
        cost = CloudCostModel(
            PricingCatalog(),
            estimate,
            footprint,
            {c.name: c.resources.storage_gb for c in app.components},
            baseline,
            time_compression=288.0,
            catalogs={loc: PricingCatalog() for loc in locations if loc != ON_PREM},
        )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences
            or MigrationPreferences(onprem_limits={"cpu_millicores": limit}),
            estimate=estimate,
            component_order=app.component_names,
            estimator=estimator if with_estimator else None,
        )

    return app, build_evaluator


def _plan(app, vector):
    return MigrationPlan.from_vector(app.component_names, list(vector))


def _single(evaluator, plan, spec):
    return evaluator.evaluate_batch([plan], scenarios=ScenarioSet((spec,)))[0]


plans_strategy = st.lists(
    st.integers(min_value=0, max_value=2), min_size=6, max_size=6
)


class TestFaultValidation:
    """Law 1: inadmissible fault parameters fail fast, at construction."""

    def test_location_outage_bounds(self):
        with pytest.raises(ValueError):
            LocationOutage(CLOUD, availability_penalty=0.5)
        with pytest.raises(ValueError):
            LocationOutage(CLOUD, latency_factor=0.9)
        with pytest.raises(ValueError):
            LocationOutage(CLOUD, bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            LocationOutage(CLOUD, bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            LocationOutage(-1)

    def test_link_degradation_bounds(self):
        with pytest.raises(ValueError):
            LinkDegradation(latency_factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(bandwidth_factor=2.0)
        with pytest.raises(ValueError):
            LinkDegradation(extra_latency_ms=-1.0)
        # Pair normalization gives order-independent identity.
        assert LinkDegradation(pairs=((1, 0),)).key() == LinkDegradation(
            pairs=((0, 1),)
        ).key()

    def test_price_shock_and_capacity_cut_bounds(self):
        with pytest.raises(ValueError):
            PriceShock(egress_factor=-1.0)
        with pytest.raises(ValueError):
            CapacityCut(CLOUD, remaining_fraction=0.0)
        with pytest.raises(ValueError):
            CapacityCut(CLOUD, remaining_fraction=1.5)

    def test_spec_rejects_non_fault_entries(self):
        with pytest.raises(TypeError):
            ScenarioSpec(name="bad", faults=("not-a-fault",))

    def test_scaled_node_spec_and_network_derive(self):
        spec = NodeSpec(name="n", cpu_millicores=1000.0, memory_mb=4096.0)
        shrunk = spec.scaled(capacity_factor=0.5, price_factor=2.0)
        assert shrunk.cpu_millicores == 500.0
        assert shrunk.memory_mb == 2048.0
        assert shrunk.hourly_price_usd == spec.hourly_price_usd * 2.0
        with pytest.raises(ValueError):
            spec.scaled(capacity_factor=0.0)
        network = default_network_model()
        with pytest.raises(KeyError):
            network.derive({(0, 7): network.link(0, 1)})
        degraded = network.degraded(latency_factor=2.0, bandwidth_factor=0.5)
        assert degraded.link(0, 1).latency_ms == network.link(0, 1).latency_ms * 2.0
        assert degraded.link(0, 1).bandwidth_mbps == network.link(0, 1).bandwidth_mbps * 0.5
        # Intra-location links are untouched by the default all-inter selection.
        assert degraded.link(0, 0).latency_ms == network.link(0, 0).latency_ms

    def test_unknown_api_in_factors_raises_at_compile_time(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0] * 6)
        typo = ScenarioSpec(name="typo", api_rate_factors={"/raed": 2.0})
        with pytest.raises(ValueError, match="unknown APIs"):
            _single(evaluator, plan, typo)
        payload_typo = ScenarioSpec(name="typo2", payload_factors={"/wirte": 2.0})
        with pytest.raises(ValueError, match="unknown APIs"):
            _single(evaluator, plan, payload_typo)


class TestFaultMonotonicity:
    """Law 2: an outage never improves QPerf/QAvai over the fault-free baseline."""

    @settings(max_examples=25, deadline=None)
    @given(
        vector=plans_strategy,
        penalty=st.floats(min_value=1.0, max_value=16.0),
        latency_factor=st.floats(min_value=1.0, max_value=64.0),
        bandwidth_factor=st.floats(min_value=0.05, max_value=1.0),
        site=st.sampled_from([CLOUD, 2]),
    )
    def test_location_outage_never_improves(
        self, fault_stack, vector, penalty, latency_factor, bandwidth_factor, site
    ):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, vector)
        base = _single(evaluator, plan, ScenarioSpec(name="base"))
        outage = ScenarioSpec(
            name="outage",
            faults=(
                LocationOutage(
                    site,
                    availability_penalty=penalty,
                    latency_factor=latency_factor,
                    bandwidth_factor=bandwidth_factor,
                ),
            ),
        )
        faulted = _single(evaluator, plan, outage)
        assert faulted.perf >= base.perf
        assert faulted.avail >= base.avail

    def test_outage_evacuation_makes_placements_there_infeasible(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0, 0, 0, CLOUD, 0, 0])
        base = _single(evaluator, plan, ScenarioSpec(name="base"))
        assert base.feasible
        faulted = _single(
            evaluator,
            plan,
            ScenarioSpec(name="outage", faults=(LocationOutage(CLOUD),)),
        )
        assert not faulted.feasible
        assert any("location" in violation for violation in faulted.violations)
        # Plans avoiding the failed site stay feasible.
        elsewhere = _plan(app, [0, 0, 0, 2, 0, 0])
        assert _single(
            evaluator,
            elsewhere,
            ScenarioSpec(name="outage2", faults=(LocationOutage(CLOUD),)),
        ).feasible

    def test_pinned_component_survives_outage_compilation(self, fault_stack):
        app, build_evaluator = fault_stack
        component = app.component_names[3]
        evaluator = build_evaluator(
            preferences=MigrationPreferences(pinned_placement={component: CLOUD})
        )
        plan = _plan(app, [0, 0, 0, CLOUD, 0, 0])
        # The pin into the failed site keeps the site admissible for that
        # component; the outage is priced through QPerf/QAvai instead.
        faulted = _single(
            evaluator,
            plan,
            ScenarioSpec(name="outage", faults=(LocationOutage(CLOUD),)),
        )
        assert all("may not run" not in violation for violation in faulted.violations)

    def test_onprem_outage_zeroes_capacity(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0] * 6)
        base = _single(evaluator, plan, ScenarioSpec(name="base"))
        assert base.feasible
        faulted = _single(
            evaluator,
            plan,
            ScenarioSpec(name="onprem-outage", faults=(LocationOutage(ON_PREM),)),
        )
        assert not faulted.feasible
        assert any("peak" in violation for violation in faulted.violations)

    def test_link_degradation_never_improves_qperf(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0, CLOUD, 0, 2, 0, CLOUD])
        base = _single(evaluator, plan, ScenarioSpec(name="base"))
        degraded = _single(
            evaluator,
            plan,
            ScenarioSpec(
                name="slow-links",
                faults=(LinkDegradation(latency_factor=4.0, bandwidth_factor=0.5),),
            ),
        )
        assert degraded.perf >= base.perf

    def test_price_shock_scales_cost(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0, CLOUD, 0, CLOUD, 0, CLOUD])
        base = _single(evaluator, plan, ScenarioSpec(name="base"))
        shocked = _single(
            evaluator,
            plan,
            ScenarioSpec(
                name="shock",
                faults=(
                    PriceShock(compute_factor=3.0, storage_factor=3.0, egress_factor=3.0),
                ),
            ),
        )
        assert shocked.cost > base.cost
        # An all-on-prem plan has no cloud bill to shock.
        onprem = _plan(app, [0] * 6)
        assert (
            _single(
                evaluator,
                onprem,
                ScenarioSpec(name="shock2", faults=(PriceShock(egress_factor=5.0),)),
            ).cost
            == _single(evaluator, onprem, ScenarioSpec(name="base2")).cost
        )

    def test_capacity_cut_raises_elastic_cost_and_onprem_infeasibility(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        cloudy = _plan(app, [0, CLOUD, 0, CLOUD, 0, CLOUD])
        base = _single(evaluator, cloudy, ScenarioSpec(name="base"))
        cut = _single(
            evaluator,
            cloudy,
            ScenarioSpec(name="cut", faults=(CapacityCut(CLOUD, remaining_fraction=0.25),)),
        )
        assert cut.cost >= base.cost
        onprem = _plan(app, [0] * 6)
        onprem_cut = _single(
            evaluator,
            onprem,
            ScenarioSpec(
                name="onprem-cut",
                faults=(CapacityCut(ON_PREM, remaining_fraction=0.1),),
            ),
        )
        assert not onprem_cut.feasible
        # A cut at a location with no catalog (and not on-prem) fails at compile.
        with pytest.raises(ValueError, match="catalog"):
            _single(
                evaluator,
                onprem,
                ScenarioSpec(name="bad-cut", faults=(CapacityCut(9),)),
            )


class TestFaultFreeIdentity:
    """Law 3: fault-free scenarios are untouched by the fault machinery."""

    def test_fault_free_compile_key_shape_is_unchanged(self):
        spec = ScenarioSpec(name="plain", rate_scale=2.0)
        key = spec.compile_key()
        assert len(key) == 5  # the exact pre-fault shape: no trailing faults entry
        faulted = spec.with_faults(LinkDegradation(latency_factor=2.0))
        assert len(faulted.compile_key()) == 6
        assert faulted.compile_key()[:5] == key

    def test_fault_free_results_identical_with_faulted_neighbors(self, fault_stack):
        app, build_evaluator = fault_stack
        vectors = [[0] * 6, [0, 1, 0, 2, 0, 1], [2, 1, 0, 1, 0, 0]]
        plain = ScenarioSet(
            (ScenarioSpec(name="observed"), ScenarioSpec(name="burst", rate_scale=3.0))
        )
        mixed = ScenarioSet(
            (
                ScenarioSpec(name="observed"),
                ScenarioSpec(name="burst", rate_scale=3.0),
                ScenarioSpec(name="outage", faults=(LocationOutage(CLOUD),)),
            )
        )
        isolated = build_evaluator()
        contaminated = build_evaluator()
        want = isolated.evaluate_vectors(vectors, scenarios=plain)
        got = contaminated.evaluate_vectors(vectors, scenarios=mixed)
        for a, b in zip(want, got):
            assert fingerprint_scenario_entries(
                a, ("observed", "burst")
            ) == fingerprint_scenario_entries(b, ("observed", "burst"))

    def test_baseline_spec_with_fault_is_not_baseline(self):
        assert ScenarioSpec(name="x").is_baseline
        assert not ScenarioSpec(name="x", faults=(LinkDegradation(latency_factor=2.0),)).is_baseline


class TestScenarioFactory:
    def test_families_cover_the_portfolio(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        factory = ScenarioFactory.from_evaluator(evaluator)
        assert factory.remote_locations == (CLOUD, 2)
        names = [spec.name for spec in factory.stress_families()]
        assert names[0] == "observed"
        assert "flash-crowd-x3" in names
        assert "outage-loc1" in names and "outage-loc2" in names
        assert "egress-shock-x2" in names
        assert "payload-x2" in names
        assert "api-mix-inversion" in names

    def test_mix_inversion_preserves_total_traffic(self, fault_stack):
        app, build_evaluator = fault_stack
        factory = ScenarioFactory.from_evaluator(build_evaluator())
        inversion = factory.api_mix_inversion()
        shares = factory.api_shares()
        total = sum(
            share * inversion.api_rate_factors[api] for api, share in shares.items()
        )
        assert total == pytest.approx(1.0)
        # Inversion is a tilt towards cold APIs: the coldest API gains the most.
        coldest = min(shares, key=shares.get)
        hottest = max(shares, key=shares.get)
        assert inversion.api_rate_factors[coldest] > 1.0
        assert inversion.api_rate_factors[hottest] < 1.0

    def test_mix_inversion_degenerates_to_none(self):
        single = ScenarioFactory(locations=(0, 1), api_rates={"/only": [1.0, 2.0]})
        assert single.api_mix_inversion() is None
        uniform = ScenarioFactory(
            locations=(0, 1), api_rates={"/a": [1.0], "/b": [1.0]}
        )
        assert uniform.api_mix_inversion() is None

    def test_seasonal_bands_are_occupancy_weighted(self, fault_stack):
        app, build_evaluator = fault_stack
        factory = ScenarioFactory.from_evaluator(build_evaluator())
        seasonal = factory.seasonal(bands=4)
        weights = [spec.weight for spec in seasonal]
        assert sum(weights) == pytest.approx(1.0)
        scales = [spec.rate_scale for spec in seasonal]
        assert scales == sorted(scales)  # quantile bands rank low → high
        # The occupancy-weighted mean of the band scales reproduces the overall mean.
        assert sum(w * s for w, s in zip(weights, scales)) == pytest.approx(1.0)

    def test_seasonal_validation(self):
        factory = ScenarioFactory(locations=(0, 1), api_rates={})
        with pytest.raises(ValueError):
            factory.seasonal(bands=0, series=[1.0])
        with pytest.raises(ValueError):
            factory.seasonal(series=[])
        with pytest.raises(ValueError):
            factory.seasonal(series=[0.0, 0.0])


class TestAdversary:
    """Law 4: certified worst case dominates the stress families, deterministically."""

    def test_certificate_dominates_every_family(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator()
        plan = _plan(app, [0, 1, 0, 2, 0, 1])
        adversary = ScenarioAdversary(evaluator, budget=20, seed=3)
        certificate = adversary.certify(plan)
        assert certificate.family_regrets  # the families were scored
        assert all(
            certificate.worst_regret >= regret
            for regret in certificate.family_regrets.values()
        )
        assert certificate.budget_spent <= 20 or certificate.budget_spent == len(
            certificate.family_regrets
        )
        assert len(certificate.regret) == len(certificate.objective_names)
        assert certificate.summary()  # renders without error

    def test_certification_is_deterministic(self, fault_stack):
        app, build_evaluator = fault_stack
        plan = _plan(app, [0, 1, 0, 2, 0, 1])
        a = ScenarioAdversary(build_evaluator(), budget=16, seed=7).certify(plan)
        b = ScenarioAdversary(build_evaluator(), budget=16, seed=7).certify(plan)
        assert fingerprint_certificate(a) == fingerprint_certificate(b)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            AdversaryBounds(max_rate_scale=0.5)
        with pytest.raises(ValueError):
            AdversaryBounds(min_capacity_fraction=0.0)
        with pytest.raises(ValueError):
            AdversaryBounds(infeasibility_penalty=-1.0)

    def test_rate_knob_disabled_without_estimator(self, fault_stack):
        app, build_evaluator = fault_stack
        evaluator = build_evaluator(with_estimator=False)
        plan = _plan(app, [0, 1, 0, 0, 0, 0])
        certificate = ScenarioAdversary(evaluator, budget=12, seed=0).certify(plan)
        # No rate-changing spec can appear anywhere in the search.
        assert not certificate.worst_spec.changes_rates
        assert all(
            "flash-crowd" not in name and name != "api-mix-inversion"
            for name in certificate.family_regrets
        )
