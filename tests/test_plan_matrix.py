"""Plan-matrix pipeline invariants.

The batched evaluation path (``QualityEvaluator.evaluate_vectors`` /
``evaluate_batch`` over a P×C location matrix) must be *bitwise* identical to the
per-plan reference oracle (``evaluate``) — objectives, feasibility, violation strings
and the ``evaluations`` counter — on both the 2-location and the 3-location quality
stacks.  The building blocks carry the same contract: ``nodes_for_series`` vs
``nodes_for``, ``capacity_matrix`` vs ``capacity_series``, ``qcost_batch`` vs
``qcost``, ``qavai_batch`` vs ``qavai``, ``qperf_batch`` vs ``qperf``,
``feasible_mask`` vs ``is_feasible``.  The allowed-locations whitelist and the
region-aware single-plan baselines ride on the same machinery and are covered here
too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CLOUD,
    ON_PREM,
    MigrationPlan,
    NodeSpec,
    default_multi_location_network,
    default_network_model,
)
from repro.cluster.autoscaler import AutoscalerConfig, ClusterAutoscaler, StorageAutoscaler
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.optimizer import AtlasGA, GAConfig
from repro.optimizer.baselines import (
    BaselineContext,
    GreedyBusiestBaseline,
    IntMABaseline,
)
from repro.optimizer.drl.agent import CrossoverAgent
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
)

THREE_LOCATIONS = (0, 1, 2)

CHEAP_WEST = PricingCatalog(
    node_spec=NodeSpec(
        name="west", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.05
    ),
    storage_usd_per_gb_month=0.04,
    egress_usd_per_gb=0.07,
)


@pytest.fixture(scope="module")
def matrix_stack(tiny_telemetry):
    """Learned models of the tiny app plus an evaluator factory over any topology."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)

    def build_evaluator(
        locations=(ON_PREM, CLOUD),
        catalogs=None,
        location_weights=None,
        preferences=None,
        engine="compiled",
        charge_cloud_egress_only=False,
    ):
        if len(locations) == 2:
            network = default_network_model()
        else:
            network = default_multi_location_network(locations=locations)
        performance = ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=network,
            baseline_plan=baseline,
            traces_per_api=20,
            engine=engine,
        )
        availability = ApiAvailabilityModel(
            {api: p.stateful_components for api, p in profiles.items()},
            baseline,
            location_weights=location_weights,
        )
        cost = CloudCostModel(
            PricingCatalog(),
            estimate,
            footprint,
            {c.name: c.resources.storage_gb for c in app.components},
            baseline,
            time_compression=288.0,
            charge_cloud_egress_only=charge_cloud_egress_only,
            catalogs=catalogs,
        )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences or MigrationPreferences(),
            estimate=estimate,
            component_order=app.component_names,
        )

    return app, build_evaluator


THREE_DC_KWARGS = dict(
    locations=THREE_LOCATIONS,
    catalogs={CLOUD: PricingCatalog(), 2: CHEAP_WEST},
    location_weights={CLOUD: 1.0, 2: 2.0},
)

CONSTRAINED_PREFS = dict(
    pinned_placement={"Database": ON_PREM},
    onprem_limits={"cpu_millicores": 250.0},
    budget_usd=0.2,
    critical_apis=["/write"],
)


class TestAutoscalerBatch:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nodes_for_series_matches_nodes_for(self, demand):
        scaler = ClusterAutoscaler(
            NodeSpec(name="n", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.1)
        )
        cpu = np.asarray([c for c, _ in demand])
        mem = np.asarray([m for _, m in demand])
        batched = scaler.nodes_for_series(cpu, mem)
        assert batched.tolist() == [scaler.nodes_for(c, m) for c, m in demand]

    def test_nodes_for_series_matrix_shape_and_zero(self):
        scaler = ClusterAutoscaler(
            NodeSpec(name="n", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.1)
        )
        cpu = np.asarray([[0.0, 1.0], [4_000.0, 5e-324]])
        mem = np.asarray([[0.0, 0.0], [0.0, 0.0]])
        nodes = scaler.nodes_for_series(cpu, mem)
        assert nodes.shape == (2, 2)
        assert nodes[0, 0] == 0  # no demand, no node
        assert nodes[0, 1] == 1  # any demand needs a node
        assert nodes[1, 1] == 1  # subnormal demand must not ceil to zero
        assert nodes[1, 0] == scaler.nodes_for(4_000.0, 0.0)

    def test_nodes_for_series_rejects_negative_and_mismatched(self):
        scaler = ClusterAutoscaler(
            NodeSpec(name="n", cpu_millicores=2_000.0, memory_mb=8_192.0, hourly_price_usd=0.1)
        )
        with pytest.raises(ValueError):
            scaler.nodes_for_series(np.asarray([-1.0]), np.asarray([0.0]))
        with pytest.raises(ValueError):
            scaler.nodes_for_series(np.zeros(2), np.zeros(3))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_matrix_matches_capacity_series(self, usage, migrated):
        scaler = StorageAutoscaler(AutoscalerConfig())
        batched = scaler.capacity_matrix(
            np.asarray([usage, usage]), np.asarray([migrated, 0.0])
        )
        assert batched[0].tolist() == scaler.capacity_series(usage, migrated)
        assert batched[1].tolist() == scaler.capacity_series(usage, 0.0)


class TestBatchedEquivalence:
    """evaluate_batch / evaluate_vectors must match the per-plan oracle bitwise."""

    def _vectors(self, app, n_locations, count=120, seed=11):
        rng = np.random.default_rng(seed)
        return rng.integers(0, n_locations, size=(count, len(app.component_names)))

    @pytest.mark.parametrize(
        "topology, prefs_kwargs",
        [
            ({}, {}),
            ({}, CONSTRAINED_PREFS),
            (THREE_DC_KWARGS, {}),
            (THREE_DC_KWARGS, CONSTRAINED_PREFS),
        ],
        ids=["2loc", "2loc-constrained", "3loc", "3loc-constrained"],
    )
    def test_batch_matches_oracle(self, matrix_stack, topology, prefs_kwargs):
        app, build_evaluator = matrix_stack
        locations = topology.get("locations", (ON_PREM, CLOUD))
        prefs = MigrationPreferences(
            pinned_placement=dict(prefs_kwargs.get("pinned_placement", {})),
            onprem_limits=dict(prefs_kwargs.get("onprem_limits", {})),
            budget_usd=prefs_kwargs.get("budget_usd", float("inf")),
            critical_apis=list(prefs_kwargs.get("critical_apis", [])),
        )
        scalar = build_evaluator(preferences=prefs, **topology)
        batched = build_evaluator(preferences=prefs, **topology)
        vectors = self._vectors(app, len(locations))
        plans = [
            MigrationPlan.from_vector(app.component_names, v)
            for v in vectors.tolist()
        ]
        want = [scalar.evaluate(plan) for plan in plans]
        got = batched.evaluate_vectors(vectors, app.component_names)
        assert scalar.evaluations == batched.evaluations
        for w, g in zip(want, got):
            assert g.objectives() == w.objectives()  # bitwise
            assert g.feasible == w.feasible
            assert g.violations == w.violations
        # Same distinct-plan cache, in the same evaluation order.
        assert [q.plan.to_vector() for q in scalar.evaluated_qualities()] == [
            q.plan.to_vector() for q in batched.evaluated_qualities()
        ]

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=6, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_single_vector_property(self, matrix_stack, vector):
        app, build_evaluator = matrix_stack
        scalar = build_evaluator(**THREE_DC_KWARGS)
        batched = build_evaluator(**THREE_DC_KWARGS)
        plan = MigrationPlan.from_vector(app.component_names, list(vector))
        want = scalar.evaluate(plan)
        got = batched.evaluate_vectors([list(vector)], app.component_names)[0]
        assert got.objectives() == want.objectives()
        assert got.feasible == want.feasible
        assert got.violations == want.violations

    def test_objective_batches_match_scalar_models(self, matrix_stack):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator(**THREE_DC_KWARGS)
        components = app.component_names
        vectors = self._vectors(app, 3, count=60, seed=5)
        plans = [MigrationPlan.from_vector(components, v) for v in vectors.tolist()]
        weights = evaluator.api_weights
        qperf = evaluator.performance.qperf_batch(vectors, components, weights)
        qavai = evaluator.availability.qavai_batch(vectors, components, weights)
        qcost = evaluator.cost.qcost_batch(vectors, components)
        for index, plan in enumerate(plans):
            assert qperf[index] == evaluator.performance.qperf(plan, weights)
            assert qavai[index] == evaluator.availability.qavai(plan, weights)
            assert qcost[index] == evaluator.cost.qcost(plan)

    def test_traffic_batch_with_endpoint_billing(self, matrix_stack):
        app, build_evaluator = matrix_stack
        scalar = build_evaluator(charge_cloud_egress_only=True, **THREE_DC_KWARGS)
        batched = build_evaluator(charge_cloud_egress_only=True, **THREE_DC_KWARGS)
        vectors = self._vectors(app, 3, count=80, seed=9)
        costs = batched.cost.qcost_batch(vectors, app.component_names)
        for vector, cost in zip(vectors.tolist(), costs):
            plan = MigrationPlan.from_vector(app.component_names, vector)
            assert cost == scalar.cost.qcost(plan)

    def test_footprint_cross_location_bytes_batch(self, matrix_stack):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator(**THREE_DC_KWARGS)
        footprint = evaluator.cost.footprint
        counts = {api: 25.0 for api in evaluator.performance.apis}
        vectors = self._vectors(app, 3, count=50, seed=17)
        totals = footprint.cross_location_bytes_batch(
            vectors, app.component_names, counts
        )
        for vector, total in zip(vectors.tolist(), totals):
            plan = MigrationPlan.from_vector(app.component_names, vector)
            loads = footprint.expected_cross_location_traffic(plan, counts)
            assert total == pytest.approx(sum(loads.values()))
            if not loads:
                assert total == 0.0

    def test_feasible_mask_matches_is_feasible(self, matrix_stack):
        app, build_evaluator = matrix_stack
        prefs = MigrationPreferences(
            onprem_limits={"cpu_millicores": 300.0}, budget_usd=30.0
        )
        evaluator = build_evaluator(preferences=prefs, **THREE_DC_KWARGS)
        vectors = self._vectors(app, 3, count=80, seed=3)
        mask = evaluator.feasible_mask(vectors, app.component_names)
        for vector, ok in zip(vectors.tolist(), mask):
            plan = MigrationPlan.from_vector(app.component_names, vector)
            assert bool(ok) == evaluator.is_feasible(plan)

    def test_mixed_scalar_and_batch_share_cache(self, matrix_stack):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator()
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceA"])
        first = evaluator.evaluate(plan)
        count = evaluator.evaluations
        again = evaluator.evaluate_vectors([plan.to_vector()], app.component_names)[0]
        assert again is first
        assert evaluator.evaluations == count

    def test_empty_batch(self, matrix_stack):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator()
        assert evaluator.evaluate_vectors([], app.component_names) == []
        assert evaluator.feasible_mask([], app.component_names).shape == (0,)
        empty = np.zeros((0, len(app.component_names)), dtype=np.int64)
        assert evaluator.performance.qperf_batch(empty, app.component_names).shape == (0,)
        assert evaluator.availability.qavai_batch(empty, app.component_names).shape == (0,)
        assert evaluator.cost.qcost_batch(empty, app.component_names).shape == (0,)

    def test_permuted_component_order_shares_cache(self, matrix_stack):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator()
        components = app.component_names
        permuted = list(reversed(components))
        plan = MigrationPlan.from_offloaded(components, ["ServiceA"])
        want = evaluator.evaluate(plan)
        count = evaluator.evaluations
        vector = [plan[c] for c in permuted]
        got = evaluator.evaluate_vectors([vector], permuted)[0]
        assert got is want  # same cache entry despite the permuted column order
        assert evaluator.evaluations == count


class TestCostScoredOnce:
    """Each plan's cost is computed exactly once per evaluation (satellite fix)."""

    def test_scalar_path_single_qcost_compute(self, matrix_stack, monkeypatch):
        app, build_evaluator = matrix_stack
        prefs = MigrationPreferences(budget_usd=0.05)  # budget constraint active
        evaluator = build_evaluator(preferences=prefs)
        calls = []
        original = type(evaluator.cost).estimate_cost

        def counting(self, plan):
            calls.append(tuple(plan.to_vector()))
            return original(self, plan)

        monkeypatch.setattr(type(evaluator.cost), "estimate_cost", counting)
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceA", "Cache"])
        quality = evaluator.evaluate(plan)
        assert not quality.feasible  # a 5-cent budget is blown
        # One uncached compute for the objective, reused by the budget check.
        assert calls.count(tuple(plan.to_vector())) == 1

    def test_batch_path_single_qcost_batch(self, matrix_stack, monkeypatch):
        app, build_evaluator = matrix_stack
        prefs = MigrationPreferences(budget_usd=0.05)
        evaluator = build_evaluator(preferences=prefs)
        batch_calls = []
        scalar_calls = []
        original_batch = type(evaluator.cost).qcost_batch
        original_scalar = type(evaluator.cost).estimate_cost

        def counting_batch(self, matrix, components):
            batch_calls.append(len(matrix))
            return original_batch(self, matrix, components)

        def counting_scalar(self, plan):
            scalar_calls.append(plan)
            return original_scalar(self, plan)

        monkeypatch.setattr(type(evaluator.cost), "qcost_batch", counting_batch)
        monkeypatch.setattr(type(evaluator.cost), "estimate_cost", counting_scalar)
        rng = np.random.default_rng(2)
        vectors = rng.integers(0, 2, size=(40, len(app.component_names)))
        evaluator.evaluate_vectors(vectors, app.component_names)
        # One batched cost pass over the distinct plans, no per-plan recompute —
        # not even for the budget check or the violation strings.
        assert batch_calls == [len({tuple(v) for v in vectors.tolist()})]
        assert scalar_calls == []


class TestAllowedLocations:
    def test_whitelist_normalized_and_on_prem_implicit(self):
        prefs = MigrationPreferences(allowed_locations={"X": (2, 1, 2)})
        assert prefs.allowed_locations["X"] == (0, 1, 2)
        assert prefs.allowed_at("X", ON_PREM)
        assert prefs.allowed_at("X", 2)
        assert not prefs.allowed_at("X", 3)
        assert prefs.allowed_at("unlisted", 7)

    def test_pin_conflicting_with_whitelist_rejected(self):
        with pytest.raises(ValueError, match="whitelist"):
            MigrationPreferences(
                pinned_placement={"X": 3}, allowed_locations={"X": (1, 2)}
            )

    def test_whitelist_violation_feasibility_and_string(self, matrix_stack):
        app, build_evaluator = matrix_stack
        prefs = MigrationPreferences(allowed_locations={"Cache": (1,)})
        scalar = build_evaluator(preferences=prefs, **THREE_DC_KWARGS)
        batched = build_evaluator(preferences=prefs, **THREE_DC_KWARGS)
        base = MigrationPlan.all_on_prem(app.component_names)
        allowed_plan = base.with_location("Cache", 1)
        banned_plan = base.with_location("Cache", 2)
        assert scalar.is_feasible(allowed_plan)
        want = scalar.evaluate(banned_plan)
        assert not want.feasible
        assert any("Cache" in v and "location 2" in v for v in want.violations)
        got = batched.evaluate_vectors(
            [banned_plan.to_vector()], app.component_names
        )[0]
        assert got.violations == want.violations

    def test_ga_sampling_and_mutation_respect_whitelist(self, matrix_stack):
        app, build_evaluator = matrix_stack
        prefs = MigrationPreferences(allowed_locations={"Cache": (1,), "Notifier": ()})
        evaluator = build_evaluator(preferences=prefs, **THREE_DC_KWARGS)
        config = GAConfig(
            population_size=10,
            offspring_per_generation=5,
            evaluation_budget=120,
            max_generations=6,
            train_iterations=4,
            train_batch_size=2,
            train_pairs=6,
            local_search_period=0,  # local-search probes explore freely; sampling must not
            seed=2,
        )
        ga = AtlasGA(
            evaluator, app.component_names, config, locations=THREE_LOCATIONS
        )
        cache_idx = app.component_names.index("Cache")
        notifier_idx = app.component_names.index("Notifier")
        for _ in range(50):
            vector = ga._random_vector()
            assert vector[cache_idx] in (0, 1)
            assert vector[notifier_idx] == 0
        result = ga.run()
        for quality in result.all_evaluated:
            assert quality.plan["Cache"] in (0, 1)
            assert quality.plan["Notifier"] == 0

    def test_crossover_agent_repairs_disallowed_draws(self):
        agent = CrossoverAgent(
            n_components=6,
            hidden_dims=(8,),
            seed=3,
            locations=THREE_LOCATIONS,
            pinned={0: ON_PREM},
            allowed={1: (0, 1), 2: (0,)},
        )
        rng = np.random.default_rng(0)
        for _ in range(40):
            child = agent.crossover([0, 1, 2, 0, 1, 2], [2, 1, 0, 2, 1, 0], rng)
            assert child[0] == ON_PREM
            assert child[1] in (0, 1)
            assert child[2] == 0

    def test_agent_without_whitelist_unchanged(self):
        plain = CrossoverAgent(n_components=5, hidden_dims=(8,), seed=4)
        with_empty = CrossoverAgent(n_components=5, hidden_dims=(8,), seed=4, allowed={})
        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        assert plain.crossover([0, 1, 0, 1, 1], [1, 0, 0, 1, 0], rng_a) == \
            with_empty.crossover([0, 1, 0, 1, 1], [1, 0, 0, 1, 0], rng_b)


class TestRegionAwareBaselines:
    def _context(self, matrix_stack, preferences=None):
        app, build_evaluator = matrix_stack
        evaluator = build_evaluator(
            preferences=preferences,
            locations=THREE_LOCATIONS,
            catalogs={CLOUD: PricingCatalog(), 2: CHEAP_WEST},
        )
        # A constraint that forces offloading: tiny on-prem CPU allowance.
        evaluator.preferences.onprem_limits["cpu_millicores"] = 1.0
        return app, BaselineContext(
            components=app.component_names,
            evaluator=evaluator,
            traffic_matrix={("ServiceA", "Database"): 1_000.0},
            busyness={c: 1.0 for c in app.component_names},
            locations=THREE_LOCATIONS,
            network=default_multi_location_network(locations=THREE_LOCATIONS),
        )

    def test_site_preference_ranks_cheapest_first(self, matrix_stack):
        _app, context = self._context(matrix_stack)
        assert context.site_preference() == [2, 1]

    def test_greedy_offloads_to_cheapest_site(self, matrix_stack):
        _app, context = self._context(matrix_stack)
        plan = GreedyBusiestBaseline(context).recommend()
        assert plan.offloaded(), "the tight CPU limit must force offloading"
        assert all(plan[c] == 2 for c in plan.offloaded())

    def test_affinity_heuristic_offloads_to_cheapest_site(self, matrix_stack):
        _app, context = self._context(matrix_stack)
        plan = IntMABaseline(context).recommend()
        assert plan.offloaded()
        assert all(plan[c] == 2 for c in plan.offloaded())

    def test_whitelist_steers_component_to_permitted_site(self, matrix_stack):
        prefs = MigrationPreferences(allowed_locations={"ServiceA": (1,)})
        app, context = self._context(matrix_stack, preferences=prefs)
        plan = GreedyBusiestBaseline(context).recommend()
        assert plan.offloaded()
        # West is cheaper, but ServiceA's whitelist only permits east.
        assert plan["ServiceA"] in (ON_PREM, 1)
        assert any(plan[c] == 2 for c in plan.offloaded() if c != "ServiceA")
