"""Budget edge cases of the adversarial scenario search (``ScenarioAdversary``).

The budget contract under test (see ``ScenarioAdversary.certify``'s docstring):

- an invalid budget is rejected at construction, not at certify time;
- the factory stress families (and caller-supplied ``extra_specs``) are *always*
  scored, even when that alone exceeds the budget — only the coordinate descent
  and the random exploration are metered;
- distinct specs are deduplicated by compiled identity, so a duplicated spec
  never double-bills the budget;
- with neutral bounds (every knob pinned to 1.0, no outages) the searchable
  space collapses to the baseline, and the miss guard stops the random phase
  instead of spinning — ``budget_spent`` stays at the seed count.
"""

import pytest
from fingerprints import build_tiny_evaluator, fingerprint_certificate

from repro.cluster import MigrationPlan
from repro.quality import (
    AdversaryBounds,
    ScenarioAdversary,
    ScenarioFactory,
    ScenarioSpec,
)

#: All knobs pinned to their neutral value: the descent grid and the random
#: sampler can only produce baseline-equivalent specs, which compile to None.
NEUTRAL_BOUNDS = AdversaryBounds(
    max_rate_scale=1.0,
    max_payload_scale=1.0,
    max_latency_factor=1.0,
    min_bandwidth_factor=1.0,
    max_price_factor=1.0,
    min_capacity_fraction=1.0,
    allow_outages=False,
)


@pytest.fixture(scope="module")
def adversary_stack(tiny_telemetry):
    app, result = tiny_telemetry
    telemetry = result.telemetry

    def build():
        return build_tiny_evaluator(app, telemetry)

    evaluator = build()
    plan = MigrationPlan.from_vector(app.component_names, [0, 1, 0, 1, 0, 0])
    seeds = [
        spec
        for spec in ScenarioFactory.from_evaluator(evaluator).stress_families(
            include_baseline=False
        )
    ]
    return build, plan, seeds


class TestAdversaryBudget:
    def test_invalid_budget_rejected_at_construction(self, adversary_stack):
        build, _, _ = adversary_stack
        evaluator = build()
        with pytest.raises(ValueError, match="budget"):
            ScenarioAdversary(evaluator, budget=0)
        with pytest.raises(ValueError, match="budget"):
            ScenarioAdversary(evaluator, budget=-5)

    def test_families_always_scored_even_beyond_budget(self, adversary_stack):
        """budget=1 < family count: every family is still scored and reported."""
        build, plan, seeds = adversary_stack
        assert len(seeds) > 1  # the premise: seeds alone exceed the budget
        certificate = ScenarioAdversary(build(), budget=1, seed=0).certify(plan)
        assert certificate.budget_spent == len(seeds)
        assert set(certificate.family_regrets) == {spec.name for spec in seeds}
        # With the budget exhausted by the seeds, the worst case is one of them.
        assert certificate.worst_regret == max(
            certificate.family_regrets.values()
        )

    def test_budget_caps_descent_and_random_spend(self, adversary_stack):
        build, plan, seeds = adversary_stack
        budget = len(seeds) + 8
        certificate = ScenarioAdversary(build(), budget=budget, seed=0).certify(
            plan
        )
        assert certificate.budget_spent == budget

    def test_duplicate_extra_specs_never_double_bill(self, adversary_stack):
        """A spec already seeded by the factory deduplicates by compiled identity."""
        build, plan, seeds = adversary_stack
        plain = ScenarioAdversary(build(), budget=1, seed=0).certify(plan)
        duplicated = ScenarioAdversary(
            build(), budget=1, seed=0, extra_specs=(seeds[0], seeds[0])
        ).certify(plan)
        assert duplicated.budget_spent == plain.budget_spent
        # A genuinely new spec bills exactly one evaluation.
        drift = ScenarioSpec(name="drift-refresh", rate_scale=1.7)
        extended = ScenarioAdversary(
            build(), budget=1, seed=0, extra_specs=(drift,)
        ).certify(plan)
        assert extended.budget_spent == plain.budget_spent + 1
        assert "drift-refresh" in extended.family_regrets

    def test_neutral_bounds_terminate_via_miss_guard(self, adversary_stack):
        """Collapsed search space: spend stays at the seed count, never hangs."""
        build, plan, seeds = adversary_stack
        adversary = ScenarioAdversary(
            build(), bounds=NEUTRAL_BOUNDS, budget=64, seed=0
        )
        certificate = adversary.certify(plan)
        assert certificate.budget_spent == len(seeds) < 64

    def test_certificate_deterministic_across_budget_edges(self, adversary_stack):
        build, plan, _ = adversary_stack
        for budget in (1, 9):
            first = ScenarioAdversary(build(), budget=budget, seed=4).certify(plan)
            second = ScenarioAdversary(build(), budget=budget, seed=4).certify(
                plan
            )
            assert fingerprint_certificate(first) == fingerprint_certificate(
                second
            )
