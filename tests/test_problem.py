"""Plugin laws of the pluggable objective/constraint stack (`quality/problem.py`).

Four laws anchor the API redesign:

1. **Default-stack identity** — the default :class:`PlacementProblem` (the paper's
   QPerf / QAvai / QCost triple under the Eq. 4 constraints) is *byte-identical* to
   the hardcoded pipeline it replaced: objectives, feasibility, violation strings,
   the ``evaluations`` counter, and whole fixed-seed GA / NSGA-II / random-search
   trajectories (sha256-fingerprinted, problem-built vs. legacy-built evaluators
   compared in-session — the same structural enforcement as ``tests/test_scenarios.py``;
   the pre/post-redesign fingerprints of the legacy path were additionally verified
   unchanged during development: ``ga_all_evaluated = 64aa48e13c07…``,
   ``nsga_plans = 1532e2212b5c…``, ``random_search = f2ab2c63f06c…`` on the tiny
   stack).
2. **Sense monotonicity** — an objective's minimized view is monotone in its raw
   score: increasing for ``sense="min"``, decreasing for ``sense="max"``; stored
   result values always minimize.
3. **Mask ⇔ violations** — a constraint's vectorized ``violated`` mask agrees with
   its materialized violation strings (violated row ⇔ non-empty strings), both
   batched and through the scalar ``violations_plan`` oracle.
4. **Custom plugins end-to-end** — a toy custom objective (and the shipped
   ``EgressTrafficObjective`` / ``MigrationChurnObjective``) widens GA, NSGA-II and
   random search to K dimensions with correct Pareto semantics and a knee point on
   the normalized front.
"""

import numpy as np
import pytest
from fingerprints import fingerprint_front, fingerprint_qualities
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MigrationPlan, default_network_model
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.optimizer import AtlasGA, GAConfig, distance_to_ideal, knee_index
from repro.optimizer.baselines import (
    AffinityNSGA2Baseline,
    BaselineContext,
    RandomSearchBaseline,
)
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    EgressTrafficObjective,
    MigrationChurnObjective,
    MigrationPreferences,
    Objective,
    PlacementProblem,
    PricingCatalog,
    QualityEvaluator,
    ScenarioSet,
    ScenarioSpec,
    make_objective,
    registered_constraints,
    registered_objectives,
)

TINY_GA = GAConfig(
    population_size=16,
    offspring_per_generation=8,
    evaluation_budget=220,
    train_iterations=20,
    train_batch_size=2,
    train_pairs=8,
    seed=11,
)


class OffloadCountObjective(Objective):
    """Toy custom objective: number of components placed off-prem (minimized)."""

    name = "offload_count"

    def score_matrix(self, ctx):
        return (ctx.matrix != 0).sum(axis=1).astype(np.float64)


class OnPremCountObjective(Objective):
    """Toy maximized objective: number of components kept on-prem."""

    name = "onprem_count"
    sense = "max"

    def score_matrix(self, ctx):
        return (ctx.matrix == 0).sum(axis=1).astype(np.float64)


@pytest.fixture(scope="module")
def problem_stack(tiny_telemetry):
    """Learned models of the tiny app plus an evaluator factory taking a problem."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)
    limit = estimate.peak("cpu_millicores", app.component_names) * 0.8

    def build_evaluator(problem=None, preferences=None, budget=None):
        performance = ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=default_network_model(),
            baseline_plan=baseline,
            traces_per_api=20,
        )
        availability = ApiAvailabilityModel(
            {api: p.stateful_components for api, p in profiles.items()}, baseline
        )
        cost = CloudCostModel(
            PricingCatalog(),
            estimate,
            footprint,
            {c.name: c.resources.storage_gb for c in app.components},
            baseline,
            time_compression=288.0,
        )
        if preferences is None:
            preferences = MigrationPreferences.pin_on_prem(
                ["Database"],
                onprem_limits={"cpu_millicores": limit},
                budget_usd=budget if budget is not None else float("inf"),
            )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences,
            estimate=estimate,
            component_order=app.component_names,
            estimator=estimator,
            problem=problem,
        )

    return app, telemetry, build_evaluator


# The canonical fingerprint helper lives in tests/fingerprints.py (one source of
# truth for every fixed-seed suite).
_fingerprint = fingerprint_qualities

vectors_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=1), min_size=6, max_size=6),
    min_size=1,
    max_size=6,
)


class TestDefaultStackIdentity:
    """Law 1: the default problem is byte-identical to the legacy hardcoded stack."""

    @settings(max_examples=20, deadline=None)
    @given(vectors=vectors_strategy)
    def test_default_problem_matches_legacy_evaluation(self, problem_stack, vectors):
        _app, _telemetry, build_evaluator = problem_stack
        legacy = build_evaluator()  # problem=None -> internal default
        declared = build_evaluator(problem=PlacementProblem.default())
        legacy_qualities = legacy.evaluate_vectors(vectors)
        declared_qualities = declared.evaluate_vectors(vectors)
        for a, b in zip(legacy_qualities, declared_qualities):
            assert repr(tuple(a.objectives())) == repr(tuple(b.objectives()))
            assert (a.perf, a.avail, a.cost) == (b.perf, b.avail, b.cost)
            assert a.feasible == b.feasible
            assert a.violations == b.violations
        assert legacy.evaluations == declared.evaluations

    @settings(max_examples=15, deadline=None)
    @given(vectors=vectors_strategy)
    def test_batched_matches_scalar_oracle(self, problem_stack, vectors):
        """The plugin engine's batched path equals the plugin scalar oracle bitwise."""
        _app, _telemetry, build_evaluator = problem_stack
        batched = build_evaluator(budget=200.0)
        scalar = build_evaluator(budget=200.0)
        via_matrix = batched.evaluate_vectors(vectors)
        components = list(batched._canonical)
        for vector, quality in zip(vectors, via_matrix):
            plan = MigrationPlan.from_vector(components, list(vector))
            reference = scalar.evaluate(plan)
            assert repr(tuple(reference.objectives())) == repr(
                tuple(quality.objectives())
            )
            assert reference.feasible == quality.feasible
            assert reference.violations == quality.violations

    def test_fixed_seed_ga_fingerprint_invariant(self, problem_stack):
        """The GA trajectory under an explicit default problem is the legacy one."""
        app, _telemetry, build_evaluator = problem_stack
        legacy = AtlasGA(build_evaluator(), app.component_names, config=TINY_GA).run()
        declared = AtlasGA(
            build_evaluator(problem=PlacementProblem.default()),
            app.component_names,
            config=TINY_GA,
        ).run()
        assert _fingerprint(legacy.all_evaluated) == _fingerprint(declared.all_evaluated)
        assert _fingerprint(legacy.pareto) == _fingerprint(declared.pareto)
        assert legacy.evaluations == declared.evaluations
        assert declared.objective_names == ("qperf", "qavai", "qcost")

    def test_fixed_seed_nsga2_and_random_search_fingerprints(self, problem_stack):
        app, telemetry, build_evaluator = problem_stack

        def context(evaluator):
            return BaselineContext(
                components=app.component_names,
                evaluator=evaluator,
                traffic_matrix=telemetry.traffic_matrix(),
                message_matrix={},
                busyness={},
            )

        nsga_fingerprint = fingerprint_front

        legacy_nsga = AffinityNSGA2Baseline(
            context(build_evaluator()), population_size=16, evaluation_budget=160, seed=5
        ).recommend()
        declared_nsga = AffinityNSGA2Baseline(
            context(build_evaluator(problem=PlacementProblem.default())),
            population_size=16,
            evaluation_budget=160,
            seed=5,
        ).recommend()
        assert nsga_fingerprint(legacy_nsga) == nsga_fingerprint(declared_nsga)

        legacy_random = RandomSearchBaseline(
            context(build_evaluator()), evaluation_budget=150, seed=9
        ).recommend()
        declared_random = RandomSearchBaseline(
            context(build_evaluator(problem=PlacementProblem.default())),
            evaluation_budget=150,
            seed=9,
        ).recommend()
        assert _fingerprint(legacy_random) == _fingerprint(declared_random)

    def test_scenario_bound_problem_matches_legacy_binding(self, problem_stack):
        """A problem with scenarios arrives pre-bound, equal to bind_scenarios."""
        _app, _telemetry, build_evaluator = problem_stack
        scenarios = ScenarioSet(
            (ScenarioSpec(name="observed"), ScenarioSpec(name="burst", rate_scale=2.0))
        )
        legacy = build_evaluator().bind_scenarios(scenarios)
        declared = build_evaluator(
            problem=PlacementProblem.default(scenarios=scenarios)
        )
        assert declared.bound_scenarios is not None
        vectors = [[0, 1, 0, 1, 0, 0], [0, 0, 0, 0, 0, 0]]
        for a, b in zip(
            legacy.evaluate_vectors(vectors), declared.evaluate_vectors(vectors)
        ):
            assert repr(tuple(a.objectives())) == repr(tuple(b.objectives()))
            assert a.feasible == b.feasible
            assert a.violations == b.violations
            assert len(a.scenarios) == len(b.scenarios) == 2


class TestSenseMonotonicity:
    """Law 2: the minimized view is monotone in the raw score, per sense."""

    @settings(max_examples=50, deadline=None)
    @given(
        scores=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=2,
            max_size=8,
        )
    )
    def test_minimized_view_preserves_or_reverses_order(self, scores):
        arr = np.asarray(scores, dtype=np.float64)
        minimized = OffloadCountObjective().minimized(arr)
        maximized = OnPremCountObjective().minimized(arr)
        order = np.argsort(arr, kind="stable")
        # sense="min": same order; sense="max": reversed preference.
        assert np.array_equal(np.sort(minimized), minimized[order])
        assert np.array_equal(np.sort(maximized)[::-1], maximized[order])

    def test_max_sense_objective_negates_stored_values(self, problem_stack):
        _app, _telemetry, build_evaluator = problem_stack
        problem = PlacementProblem.default(extra_objectives=(OnPremCountObjective(),))
        evaluator = build_evaluator(problem=problem)
        vectors = [[0, 0, 0, 0, 0, 0], [0, 1, 1, 0, 0, 1]]
        qualities = evaluator.evaluate_vectors(vectors)
        # All-on-prem keeps 6 components local -> minimized value -6.
        assert qualities[0].value("onprem_count") == -6.0
        assert qualities[1].value("onprem_count") == -3.0
        # The "better" (more on-prem) plan minimizes the stored value.
        assert qualities[0].value("onprem_count") < qualities[1].value("onprem_count")

    def test_invalid_sense_rejected(self):
        with pytest.raises(ValueError):

            class Broken(Objective):  # noqa: F811 - intentionally throwaway
                name = "broken"
                sense = "sideways"


class TestConstraintMaskLaw:
    """Law 3: the vectorized mask agrees with the materialized violation strings."""

    @settings(max_examples=20, deadline=None)
    @given(vectors=vectors_strategy)
    def test_mask_iff_violations(self, problem_stack, vectors):
        _app, _telemetry, build_evaluator = problem_stack
        evaluator = build_evaluator(budget=150.0)
        matrix, components = evaluator._lower(vectors, None)
        ctx = evaluator._matrix_context(matrix, components)
        for constraint in evaluator.problem.constraints:
            check = constraint.check(ctx)
            assert check.violated.shape == (matrix.shape[0],)
            for row in range(matrix.shape[0]):
                strings = check.materialize(row)
                assert bool(check.violated[row]) == bool(strings)

    @settings(max_examples=20, deadline=None)
    @given(vectors=vectors_strategy)
    def test_scalar_violations_match_batched_mask(self, problem_stack, vectors):
        _app, _telemetry, build_evaluator = problem_stack
        evaluator = build_evaluator(budget=150.0)
        matrix, components = evaluator._lower(vectors, None)
        ctx = evaluator._matrix_context(matrix, components)
        checks = {c.name: c.check(ctx) for c in evaluator.problem.constraints}
        for row, vector in enumerate(matrix.tolist()):
            plan = MigrationPlan.from_vector(components, vector)
            plan_ctx = evaluator._plan_context(plan)
            for constraint in evaluator.problem.constraints:
                batched = checks[constraint.name]
                scalar_strings = constraint.violations_plan(plan_ctx, plan)
                assert scalar_strings == batched.materialize(row)

    def test_feasible_mask_is_constraint_conjunction(self, problem_stack):
        _app, _telemetry, build_evaluator = problem_stack
        evaluator = build_evaluator(budget=150.0)
        vectors = [[0, 0, 0, 0, 0, 0], [1, 1, 1, 1, 1, 1], [0, 1, 0, 1, 0, 0]]
        matrix, components = evaluator._lower(vectors, None)
        ctx = evaluator._matrix_context(matrix, components)
        violated = np.zeros(matrix.shape[0], dtype=bool)
        for constraint in evaluator.problem.constraints:
            violated |= constraint.check(ctx).violated
        np.testing.assert_array_equal(
            evaluator.feasible_mask(vectors), ~violated
        )


class TestCustomObjectivesEndToEnd:
    """Law 4: custom plugins run through every optimizer with K-dim fronts."""

    @pytest.fixture(scope="class")
    def k4_problem(self):
        return PlacementProblem.default(extra_objectives=(OffloadCountObjective(),))

    def test_ga_produces_k4_front(self, problem_stack, k4_problem):
        app, _telemetry, build_evaluator = problem_stack
        evaluator = build_evaluator(problem=k4_problem)
        result = AtlasGA(evaluator, app.component_names, config=TINY_GA).run()
        assert result.objective_names == ("qperf", "qavai", "qcost", "offload_count")
        assert result.pareto
        for quality in result.pareto:
            assert len(quality.objectives()) == 4
            assert quality.value("offload_count") == float(
                len(quality.plan.offloaded())
            )
        # Mutual non-domination in 4-D.
        for a in result.pareto:
            for b in result.pareto:
                if a is not b:
                    assert not a.dominates(b)
        assert [tuple(p) for p in result.front_points()] == [
            tuple(q.objectives()) for q in result.pareto
        ]
        # knee_point sits on the front and minimizes distance-to-ideal.
        knee = result.knee_point()
        distances = distance_to_ideal(result.front_points())
        assert knee is result.pareto[int(np.argmin(distances))]
        ordered = result.knee_ordered()
        assert ordered[0] is knee
        assert sorted(map(id, ordered)) == sorted(map(id, result.pareto))
        # best_for resolves names; unknown names are KeyError, not ValueError.
        assert result.best_for("offload_count") is result.pareto[
            int(np.argmin([q.value("offload_count") for q in result.pareto]))
        ]
        with pytest.raises(KeyError):
            result.best_for("nope")

    def test_nsga2_and_random_search_respect_k4(self, problem_stack, k4_problem):
        app, telemetry, build_evaluator = problem_stack
        evaluator = build_evaluator(problem=k4_problem)
        context = BaselineContext(
            components=app.component_names,
            evaluator=evaluator,
            traffic_matrix=telemetry.traffic_matrix(),
            message_matrix={},
            busyness={},
        )
        random_front = RandomSearchBaseline(
            context, evaluation_budget=150, seed=9
        ).recommend()
        assert random_front
        for quality in random_front:
            assert len(quality.objectives()) == 4
        for a in random_front:
            for b in random_front:
                if a is not b:
                    assert not a.dominates(b)
        # The affinity NSGA-II keeps its own 2-objective space but runs against the
        # K-objective evaluator's feasibility/cost doors without issue.
        nsga = AffinityNSGA2Baseline(
            context, population_size=16, evaluation_budget=120, seed=5
        ).recommend()
        assert nsga.evaluations >= 120

    def test_shipped_plugins_score_correctly(self, problem_stack):
        _app, _telemetry, build_evaluator = problem_stack
        problem = PlacementProblem.default(
            extra_objectives=(EgressTrafficObjective(), MigrationChurnObjective())
        )
        evaluator = build_evaluator(problem=problem)
        vectors = [[0, 0, 0, 0, 0, 0], [0, 1, 1, 0, 0, 1]]
        onprem, offloaded = evaluator.evaluate_vectors(vectors)
        # The all-on-prem plan moves nothing and crosses no location boundary.
        assert onprem.value("egress_gb") == 0.0
        assert onprem.value("migration_churn") == 0.0
        assert offloaded.value("egress_gb") > 0.0
        assert offloaded.value("migration_churn") == 3.0
        # Egress tracks the raw bytes of the cost model's traffic lowering.
        lowering = evaluator.cost._lowering(list(evaluator._canonical))
        matrix = np.asarray([vectors[1]])
        crossing = matrix[:, lowering.src_cols] != matrix[:, lowering.dst_cols]
        expected = float((crossing @ (lowering.total_bytes / 1e9))[0])
        assert offloaded.value("egress_gb") == expected

    def test_scenario_robust_custom_objective(self, problem_stack):
        """A custom objective rides the scenario axis: per-scenario values + aggregate."""
        _app, _telemetry, build_evaluator = problem_stack
        scenarios = ScenarioSet(
            (ScenarioSpec(name="observed"), ScenarioSpec(name="chatty",
                                                         payload_factors={"/read": 3.0}))
        )
        problem = PlacementProblem.default(
            extra_objectives=(EgressTrafficObjective(),)
        ).with_scenarios(scenarios)
        evaluator = build_evaluator(problem=problem)
        quality = evaluator.evaluate_vectors([[0, 1, 1, 0, 0, 1]])[0]
        assert len(quality.scenarios) == 2
        by_name = {entry.scenario: entry for entry in quality.scenarios}
        # Payload growth inflates the scenario's cross-location bytes.
        assert (
            by_name["chatty"].value("egress_gb")
            > by_name["observed"].value("egress_gb")
        )
        # Worst-case aggregation picks the chatty scenario's egress.
        assert quality.value("egress_gb") == by_name["chatty"].value("egress_gb")


class TestProblemApi:
    def test_default_problem_shape(self):
        problem = PlacementProblem.default()
        assert problem.K == 3
        assert problem.objective_names == ("qperf", "qavai", "qcost")
        assert problem.is_default_stack
        assert problem.index_of("qcost") == 2
        with pytest.raises(KeyError):
            problem.index_of("nope")

    def test_with_objectives_appends(self):
        problem = PlacementProblem.default().with_objectives(EgressTrafficObjective())
        assert problem.K == 4
        assert problem.objective_names[-1] == "egress_gb"
        assert not problem.is_default_stack

    def test_with_scenarios_preserves_aggregator(self):
        from repro.quality import CVaR, ScenarioSet, ScenarioSpec

        risk = CVaR(0.9)
        base = ScenarioSet((ScenarioSpec(name="a"),))
        problem = PlacementProblem.default(scenarios=base, aggregator=risk)
        rebound = problem.with_scenarios(
            ScenarioSet((ScenarioSpec(name="a"), ScenarioSpec(name="b", rate_scale=2.0)))
        )
        assert rebound.aggregator is risk
        replaced = problem.with_scenarios(base, aggregator=CVaR(0.2))
        assert replaced.aggregator is not risk

    def test_k3_non_triple_problem_keeps_its_names(self, problem_stack):
        """A K=3 problem that replaces a built-in must not masquerade as the triple."""
        _app, _telemetry, build_evaluator = problem_stack
        from repro.quality import QAvaiObjective, QCostObjective

        problem = PlacementProblem(
            objectives=(OffloadCountObjective(), QAvaiObjective(), QCostObjective()),
            constraints=PlacementProblem.default().constraints,
        )
        evaluator = build_evaluator(problem=problem)
        quality = evaluator.evaluate_vectors([[0, 1, 1, 0, 0, 1]])[0]
        assert quality.objective_names() == ("offload_count", "qavai", "qcost")
        assert quality.value("offload_count") == 3.0
        # Positional legacy fallback: perf mirrors column 0 (there is no qperf).
        assert quality.perf == 3.0

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            PlacementProblem.default(extra_objectives=(make_objective("qperf"),))

    def test_aggregator_requires_scenarios(self):
        from repro.quality import WeightedMean

        with pytest.raises(ValueError):
            PlacementProblem.default(aggregator=WeightedMean())

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            PlacementProblem(objectives=(), constraints=())

    def test_registries_cover_builtins(self):
        assert {"qperf", "qavai", "qcost", "egress-traffic", "migration-churn"} <= set(
            registered_objectives()
        )
        assert {
            "pinned-placement",
            "allowed-locations",
            "onprem-peaks",
            "budget",
        } <= set(registered_constraints())
        assert make_objective("egress-traffic").name == "egress_gb"
        with pytest.raises(KeyError):
            make_objective("no-such-objective")

    def test_legacy_triple_positional_fallback(self):
        problem = PlacementProblem(
            objectives=(OffloadCountObjective(),), constraints=()
        )
        perf, avail, cost = problem.legacy_triple((5.0,))
        assert perf == 5.0
        assert np.isnan(avail) and np.isnan(cost)

    def test_knee_index_balances_extremes(self):
        # Two extreme corners and one balanced point: the knee is the balanced one.
        points = [(0.0, 1.0), (1.0, 0.0), (0.2, 0.2)]
        assert knee_index(points) == 2


class TestLegacyShim:
    def test_recommend_legacy_scenarios_kwarg_warns_once(self, tiny_telemetry):
        from repro.recommend import Atlas, AtlasConfig
        from repro.recommend import advisor as advisor_module

        app, result = tiny_telemetry
        ga = GAConfig(
            population_size=8,
            offspring_per_generation=4,
            evaluation_budget=60,
            train_iterations=5,
            train_batch_size=2,
            train_pairs=4,
            max_generations=3,
            seed=0,
        )
        atlas = Atlas(
            app, MigrationPreferences(), config=AtlasConfig(traces_per_api=10, ga=ga)
        )
        atlas.learn(result.telemetry)
        advisor_module._LEGACY_KWARGS_WARNED = False
        try:
            with pytest.warns(DeprecationWarning, match="PlacementProblem"):
                first = atlas.recommend(
                    scenarios=ScenarioSpec(name="burst", rate_scale=1.5)
                )
            assert first.problem is not None and first.problem.scenarios is not None
            # Second legacy call: the shim warns only once per process.
            import warnings as warnings_module

            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", DeprecationWarning)
                second = atlas.recommend(
                    scenarios=ScenarioSpec(name="burst", rate_scale=1.5)
                )
            assert second.scenario_set is not None
        finally:
            advisor_module._LEGACY_KWARGS_WARNED = False

    def test_problem_front_door_rejects_conflicting_kwargs(self, tiny_telemetry):
        from repro.recommend import Atlas, AtlasConfig

        app, result = tiny_telemetry
        atlas = Atlas(app, MigrationPreferences(), config=AtlasConfig(traces_per_api=10))
        atlas.learn(result.telemetry)
        with pytest.raises(ValueError, match="with_scenarios"):
            atlas.recommend(
                problem=PlacementProblem.default(),
                scenarios=ScenarioSpec(name="x", rate_scale=2.0),
            )
        with pytest.raises(ValueError, match="both"):
            atlas.recommend(
                problem=PlacementProblem.default(
                    preferences=MigrationPreferences()
                ),
                preferences=MigrationPreferences(),
            )
