"""The parallel island-search test harness: equivalence, determinism, crash safety.

Four pillars, mirroring the determinism contract in ``optimizer/parallel.py``:

1. **Merge law** (property-based): :func:`merge_fronts` over any partition of items
   into per-island fronts equals one :func:`pareto_front` over the union — same
   dominance rule, same first-occurrence dedup, same order.  This is what makes the
   parent's K-dim merge of per-island fronts trustworthy.
2. **Cross-process determinism**: the same ``(seed, islands, migration_period)``
   reproduces the identical ``SearchResult`` fingerprint across two full runs, for
   the Atlas GA and both parallel baselines (W=4 variants are ``slow``-marked).
3. **Crash safety**: a worker that dies — clean exception, ``os._exit``, or a
   SIGKILL — surfaces promptly as :class:`ParallelSearchError`, never as a hang.
4. **Shared-memory arena**: round-trip fidelity, chunking and release of
   :class:`ShmArena`, and the budget/seed derivation laws of the island configs.
"""

import os
import signal
import time
from dataclasses import replace

import numpy as np
import pytest
from fingerprints import (
    build_tiny_evaluator,
    fingerprint_front,
    fingerprint_qualities,
    fingerprint_search_result,
    make_baseline_context,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer import AtlasGA, GAConfig, merge_fronts, pareto_front
from repro.optimizer.baselines import AffinityNSGA2Baseline, RandomSearchBaseline
from repro.optimizer.parallel import (
    ParallelSearchError,
    ShmArena,
    derive_island_config,
    derive_seed,
    run_forked,
)

#: Uniform crossover skips DRL training, keeping the forked runs fast; the DRL
#: path's serial identity is already pinned by the golden-fingerprint suite.
PARALLEL_GA = GAConfig(
    population_size=16,
    offspring_per_generation=8,
    evaluation_budget=220,
    max_generations=9,
    crossover="uniform",
    migration_period=3,
    migration_elites=2,
    seed=13,
)


# -- 1. the merge law ------------------------------------------------------------------------
def _partition_strategy(values):
    """Strategy: (fronts, union) where fronts partition a list of K-dim tuples."""
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda k: st.lists(
            st.lists(st.tuples(*[values] * k), min_size=0, max_size=8),
            min_size=0,
            max_size=5,
        )
    )


class TestMergeLaw:
    @settings(max_examples=200, deadline=None)
    @given(fronts=_partition_strategy(st.integers(0, 3).map(float)))
    def test_merge_equals_pareto_front_over_union_tie_heavy(self, fronts):
        """Integer-valued objectives force duplicates, ties and dominance chains."""
        union = [item for front in fronts for item in front]
        assert merge_fronts(fronts, key=lambda t: t) == pareto_front(
            union, key=lambda t: t
        )

    @settings(max_examples=200, deadline=None)
    @given(
        fronts=_partition_strategy(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        )
    )
    def test_merge_equals_pareto_front_over_union_floats(self, fronts):
        union = [item for front in fronts for item in front]
        assert merge_fronts(fronts, key=lambda t: t) == pareto_front(
            union, key=lambda t: t
        )

    def test_merge_preserves_item_identity_not_just_values(self):
        """Distinct items with identical objectives: first occurrence survives."""
        a, b = {"id": "a", "obj": (1.0, 2.0)}, {"id": "b", "obj": (1.0, 2.0)}
        merged = merge_fronts([[a], [b]], key=lambda item: item["obj"])
        assert merged == [a]

    def test_merge_evicts_dominated_survivors(self):
        fronts = [[(2.0, 2.0)], [(3.0, 0.0)], [(1.0, 1.0)]]
        assert merge_fronts(fronts, key=lambda t: t) == [(3.0, 0.0), (1.0, 1.0)]

    def test_merge_of_nothing(self):
        assert merge_fronts([], key=lambda t: t) == []
        assert merge_fronts([[], []], key=lambda t: t) == []


# -- 2. cross-process determinism ------------------------------------------------------------
@pytest.fixture(scope="module")
def stack(tiny_telemetry):
    app, result = tiny_telemetry
    return app, result.telemetry


def _run_parallel_ga(app, telemetry, islands):
    evaluator = build_tiny_evaluator(app, telemetry)
    return AtlasGA(
        evaluator, app.component_names, config=PARALLEL_GA, islands=islands
    ).run()


class TestCrossProcessDeterminism:
    def test_two_islands_reproduce_fingerprint(self, stack):
        app, telemetry = stack
        first = _run_parallel_ga(app, telemetry, islands=2)
        second = _run_parallel_ga(app, telemetry, islands=2)
        assert fingerprint_search_result(first) == fingerprint_search_result(second)
        # Parallel result-shape contract (see run_island_search's docstring).
        assert first.training_history is None
        assert first.pareto and first.evaluations > 0

    @pytest.mark.slow
    def test_four_islands_reproduce_fingerprint(self, stack):
        app, telemetry = stack
        first = _run_parallel_ga(app, telemetry, islands=4)
        second = _run_parallel_ga(app, telemetry, islands=4)
        assert fingerprint_search_result(first) == fingerprint_search_result(second)

    def test_pareto_front_is_mutually_nondominated(self, stack):
        app, telemetry = stack
        result = _run_parallel_ga(app, telemetry, islands=2)
        for a in result.pareto:
            for b in result.pareto:
                if a is not b:
                    assert not a.dominates(b)

    def test_random_search_workers_reproduce_fingerprint(self, stack):
        app, telemetry = stack

        def run():
            context = make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            )
            return RandomSearchBaseline(
                context, evaluation_budget=200, seed=9, workers=2
            ).recommend()

        assert fingerprint_qualities(run()) == fingerprint_qualities(run())

    def test_nsga2_islands_reproduce_fingerprint(self, stack):
        app, telemetry = stack

        def run():
            context = make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            )
            return AffinityNSGA2Baseline(
                context,
                population_size=16,
                evaluation_budget=200,
                seed=5,
                islands=2,
            ).recommend()

        first, second = run(), run()
        assert fingerprint_front(first) == fingerprint_front(second)
        assert first.evaluations == second.evaluations

    def test_unshardable_budget_is_rejected(self, stack):
        app, telemetry = stack
        # 18 clears GAConfig's own budget > population check, but the per-island
        # share (18 // 4 = 4) no longer exceeds the island population of 4.
        tiny_budget = replace(PARALLEL_GA, evaluation_budget=18)
        ga = AtlasGA(
            build_tiny_evaluator(app, telemetry),
            app.component_names,
            config=tiny_budget,
            islands=4,
        )
        with pytest.raises(ValueError, match="too small to shard"):
            ga.run()


# -- 3. crash safety -------------------------------------------------------------------------
def _sleep_forever():
    time.sleep(600)


def _exit_dirty():
    os._exit(3)


def _kill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_runtime_error():
    raise RuntimeError("worker blew up")


class TestCrashSafety:
    def test_clean_exit_zero_succeeds(self):
        run_forked([lambda: None, lambda: None])

    def test_nonzero_exit_surfaces_promptly(self):
        start = time.monotonic()
        with pytest.raises(ParallelSearchError, match="exit code 3"):
            run_forked([_sleep_forever, _exit_dirty], label="stub")
        assert time.monotonic() - start < 30.0

    def test_killed_worker_surfaces_promptly_not_hang(self):
        start = time.monotonic()
        with pytest.raises(ParallelSearchError):
            run_forked([_sleep_forever, _kill_self], label="stub")
        assert time.monotonic() - start < 30.0

    def test_unhandled_exception_surfaces(self):
        with pytest.raises(ParallelSearchError, match="exit code 1"):
            run_forked([_raise_runtime_error])

    def test_timeout_surfaces(self):
        start = time.monotonic()
        with pytest.raises(ParallelSearchError, match="timed out"):
            run_forked([_sleep_forever], timeout=0.5)
        assert time.monotonic() - start < 30.0

    def test_crashed_island_surfaces_through_search(self, stack, monkeypatch):
        """A worker dying mid-search raises ParallelSearchError in the parent."""
        app, telemetry = stack
        monkeypatch.setattr(
            AtlasGA, "_run_serial", lambda self: (_ for _ in ()).throw(RuntimeError)
        )
        ga = AtlasGA(
            build_tiny_evaluator(app, telemetry),
            app.component_names,
            config=PARALLEL_GA,
            islands=2,
        )
        start = time.monotonic()
        with pytest.raises(ParallelSearchError):
            ga.run()
        assert time.monotonic() - start < 60.0


# -- 4. shared-memory arena and config derivation --------------------------------------------
class TestShmArena:
    def test_share_roundtrip_preserves_everything(self):
        arena = ShmArena()
        try:
            for dtype in (np.float64, np.int64, np.intp, bool):
                original = (np.arange(24).reshape(4, 6) % 3).astype(dtype)
                view = arena.share(original)
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
                assert view is not original
        finally:
            arena.release()

    def test_views_are_64_byte_aligned(self):
        arena = ShmArena()
        try:
            for _ in range(5):
                view = arena.empty((7,), np.float64)
                address = view.__array_interface__["data"][0]
                assert address % 64 == 0
        finally:
            arena.release()

    def test_chunking_bounds_segment_count(self):
        arena = ShmArena(chunk_bytes=1 << 16)
        try:
            for _ in range(100):
                arena.empty((16,), np.float64)
            # 100 x 128 aligned bytes fit in a single 64 KiB chunk.
            assert arena.n_segments == 1
            # An allocation bigger than the chunk gets its own segment.
            arena.empty((1 << 14,), np.float64)
            assert arena.n_segments == 2
        finally:
            arena.release()

    def test_release_is_idempotent(self):
        arena = ShmArena()
        arena.empty((8,), np.float64)
        arena.release()
        arena.release()
        assert arena.n_segments == 0

    def test_zero_size_allocation(self):
        arena = ShmArena()
        try:
            view = arena.empty((0,), np.float64)
            assert view.size == 0
        finally:
            arena.release()


class TestIslandDerivation:
    def test_derived_seeds_are_distinct(self):
        seeds = [derive_seed(13, worker) for worker in range(8)]
        assert len(set(seeds)) == 8
        assert all(seed != 13 for seed in seeds)

    def test_island_config_shards_population_and_budget(self):
        config = GAConfig(
            population_size=100,
            offspring_per_generation=50,
            evaluation_budget=10_000,
            immigrants_per_generation=10,
            seed=13,
        )
        derived = [derive_island_config(config, i, 4) for i in range(4)]
        assert all(d.islands == 1 for d in derived)
        assert all(d.population_size == 25 for d in derived)
        assert all(d.offspring_per_generation == 12 for d in derived)
        assert all(d.evaluation_budget == 2_500 for d in derived)
        assert len({d.seed for d in derived}) == 4

    def test_island_budget_is_offset_by_preexisting_evaluations(self):
        config = GAConfig(evaluation_budget=10_000, seed=13)
        derived = derive_island_config(config, 0, 4, base_evaluations=2_000)
        # The serial loop compares against the inherited absolute counter.
        assert derived.evaluation_budget == 2_000 + (10_000 - 2_000) // 4

    def test_single_island_rejected(self):
        with pytest.raises(ValueError):
            derive_island_config(GAConfig(), 0, 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(islands=0)
        with pytest.raises(ValueError):
            GAConfig(migration_period=0)
        with pytest.raises(ValueError):
            GAConfig(migration_elites=0)
