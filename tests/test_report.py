"""The perf-trajectory report and its ``--check`` regression gate.

The gate is CI-facing: a synthetic ledger whose latest run dropped more than 10%
off its best must make ``report.py --check`` exit non-zero, a mild drop must not,
and runs tagged with different measurement ``mode``\\s must never be compared
against each other (the ``bench[mode]`` split).
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import report  # noqa: E402  (benchmarks/report.py, stdlib-only)


def _ledger(path: Path, bench: str, values, metric="speedup", mode_of=None):
    """Write one BENCH_*.json ledger with a run per value, oldest first."""
    runs = []
    for index, value in enumerate(values):
        metrics = {metric: value}
        if mode_of is not None and mode_of(index) is not None:
            metrics["mode"] = mode_of(index)
        runs.append(
            {
                "bench": bench,
                "timestamp": f"2026-08-0{1 + index}T00:00:00+00:00",
                "git_sha": f"{index:07x}00",
                "metrics": metrics,
            }
        )
    path.write_text(json.dumps({"schema": 1, "runs": runs}))


class TestHeadlineMetric:
    def test_direction_aware_preference_order(self):
        assert report.headline_metric({"speedup": 2.0, "plans_per_s": 9.0}) == ("speedup", True)
        assert report.headline_metric({"warm_speedup": 5.0, "cold_s": 1.0}) == (
            "warm_speedup",
            True,
        )
        assert report.headline_metric({"plans_per_s": 9.0, "total_s": 3.0}) == (
            "plans_per_s",
            True,
        )
        assert report.headline_metric({"total_s": 3.0}) == ("total_s", False)
        assert report.headline_metric({"engine": "fused", "workers": 4}) is None


class TestRegressionGate:
    def test_big_drop_fails_the_check(self, tmp_path, capsys):
        _ledger(tmp_path / "BENCH_x.json", "x", [10.0, 8.0])  # -20% off best
        assert report.main(["--root", str(tmp_path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_mild_drop_passes(self, tmp_path):
        _ledger(tmp_path / "BENCH_x.json", "x", [10.0, 9.5])  # -5%: within threshold
        assert report.main(["--root", str(tmp_path), "--check"]) == 0

    def test_lower_is_better_metrics_gate_on_increases(self, tmp_path):
        _ledger(tmp_path / "BENCH_x.json", "x", [1.0, 1.5], metric="total_s")
        assert report.main(["--root", str(tmp_path), "--check"]) == 1
        _ledger(tmp_path / "BENCH_x.json", "x", [1.5, 1.0], metric="total_s")
        assert report.main(["--root", str(tmp_path), "--check"]) == 0

    def test_without_check_regressions_only_report(self, tmp_path):
        _ledger(tmp_path / "BENCH_x.json", "x", [10.0, 8.0])
        assert report.main(["--root", str(tmp_path)]) == 0

    def test_output_file_written(self, tmp_path):
        _ledger(tmp_path / "BENCH_x.json", "x", [10.0, 11.0])
        out = tmp_path / "report.md"
        assert report.main(["--root", str(tmp_path), "-o", str(out), "--check"]) == 0
        assert "at best" in out.read_text()


class TestModeSplit:
    def test_runs_of_different_modes_never_cross_compare(self, tmp_path):
        # Early whole-batch runs measured a slower quantity (0.8x); the chunked
        # re-measurement reads 1.6x.  Ungrouped, the latest whole-batch number
        # would look like a 50% regression off the chunked best.
        _ledger(
            tmp_path / "BENCH_x.json",
            "x",
            [0.8, 0.82, 1.6, 1.57],
            mode_of=lambda i: "whole-batch" if i < 2 else "chunked",
        )
        rows = report.build_rows(report.load_ledgers(tmp_path))
        assert [row["bench"] for row in rows] == ["x[chunked]", "x[whole-batch]"]
        assert all(not str(row["trend"]).startswith("REGRESSION") for row in rows)
        assert report.main(["--root", str(tmp_path), "--check"]) == 0

    def test_untagged_runs_keep_the_bare_bench_group(self, tmp_path):
        _ledger(tmp_path / "BENCH_x.json", "x", [2.0, 2.1])
        rows = report.build_rows(report.load_ledgers(tmp_path))
        assert [row["bench"] for row in rows] == ["x"]

    def test_regression_within_one_mode_still_gates(self, tmp_path):
        _ledger(
            tmp_path / "BENCH_x.json",
            "x",
            [1.6, 1.0],
            mode_of=lambda i: "chunked",
        )
        assert report.main(["--root", str(tmp_path), "--check"]) == 1
