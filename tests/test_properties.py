"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CLOUD,
    ON_PREM,
    AutoscalerConfig,
    ClusterAutoscaler,
    MigrationPlan,
    NodeSpec,
    StorageAutoscaler,
    default_network_model,
)
from repro.monitoring import kl_divergence
from repro.optimizer import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front,
    survival_selection,
)
from repro.quality import DelayInjector
from repro.telemetry import Span, Trace

objective_vectors = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


class TestParetoProperties:
    @given(objective_vectors)
    @settings(max_examples=50, deadline=None)
    def test_front_members_are_mutually_non_dominated(self, points):
        front = pareto_front(points, key=lambda p: p)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)

    @given(objective_vectors)
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_or_in_front(self, points):
        front = pareto_front(points, key=lambda p: p)
        for point in points:
            assert point in front or any(
                dominates(member, point) or tuple(member) == tuple(point) for member in front
            )

    @given(objective_vectors)
    @settings(max_examples=50, deadline=None)
    def test_non_dominated_sort_partitions_population(self, points):
        fronts = non_dominated_sort(points)
        indices = [i for front in fronts for i in front]
        assert sorted(indices) == list(range(len(points)))
        # Front 0 must be non-dominated by anything.
        for i in fronts[0]:
            assert not any(dominates(points[j], points[i]) for j in range(len(points)) if j != i)

    @given(objective_vectors)
    @settings(max_examples=50, deadline=None)
    def test_crowding_distance_non_negative(self, points):
        distances = crowding_distance(points)
        assert len(distances) == len(points)
        assert all(d >= 0 for d in distances)

    @given(objective_vectors, st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_survival_selection_size_and_validity(self, points, capacity):
        survivors = survival_selection(points, capacity)
        assert len(survivors) == min(capacity, len(points))
        assert len(set(survivors)) == len(survivors)
        assert all(0 <= i < len(points) for i in survivors)


class TestPlanProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_vector_round_trip(self, vector):
        components = [f"c{i}" for i in range(len(vector))]
        plan = MigrationPlan.from_vector(components, vector)
        assert plan.to_vector() == vector
        assert MigrationPlan.from_json(plan.to_json(), order=components) == plan
        assert plan.offload_count() == sum(vector)
        assert set(plan.offloaded()) | set(plan.on_prem()) == set(components)


class TestNetworkProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_extra_delay_non_negative_and_monotone_in_payload(self, small, extra):
        network = default_network_model()
        before = (ON_PREM, ON_PREM)
        after = (ON_PREM, CLOUD)
        d_small = network.extra_delay_ms(before, after, small, small)
        d_large = network.extra_delay_ms(before, after, small + extra, small + extra)
        assert d_small >= 0.0
        assert d_large >= d_small - 1e-9


class TestAutoscalerProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_nodes_cover_demand_with_headroom(self, cpu, memory):
        spec = NodeSpec("n", 2_000.0, 8_192.0)
        scaler = ClusterAutoscaler(spec, AutoscalerConfig(0.2, 0.2))
        nodes = scaler.nodes_for(cpu, memory)
        assert nodes >= 0
        if cpu > 0 or memory > 0:
            assert nodes * spec.cpu_millicores >= cpu
            assert nodes * spec.memory_mb >= memory

    @given(st.lists(st.floats(min_value=0.0, max_value=500.0, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_storage_capacity_never_decreases(self, usage):
        scaler = StorageAutoscaler(AutoscalerConfig(storage_headroom=0.2))
        series = scaler.capacity_series(usage, migrated_data_gb=50.0)
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert all(c >= 0 for c in series)


def _chain_trace(durations):
    """A purely sequential chain Frontend -> S1 -> S2 ... used for injection properties."""
    spans = []
    start = 0.0
    total = sum(durations) + len(durations)
    spans.append(Span("t", "s0", None, "C0", "op", 0.0, total))
    cursor = 1.0
    for i, duration in enumerate(durations, start=1):
        spans.append(Span("t", f"s{i}", f"s{i-1}", f"C{i}", "op", cursor, duration))
        cursor += 1.0 + duration
    return Trace("t", "/chain", spans)


class TestDelayInjectionProperties:
    @given(
        st.lists(st.floats(min_value=0.5, max_value=20.0, allow_nan=False), min_size=1, max_size=6),
        st.lists(st.floats(min_value=0.0, max_value=60.0, allow_nan=False), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_injected_latency_never_decreases_and_bounded_by_total_delay(self, durations, delays):
        trace = _chain_trace(durations)
        edge_delays = {
            (f"C{i}", f"C{i+1}"): delay
            for i, delay in enumerate(delays[: len(durations)])
        }
        injector = DelayInjector(trace)
        injected = injector.injected_latency_ms(edge_delays)
        assert injected >= trace.latency_ms - 1e-6
        assert injected <= trace.latency_ms + sum(edge_delays.values()) + 1e-6

    @given(st.lists(st.floats(min_value=0.5, max_value=20.0, allow_nan=False), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_zero_delays_are_identity(self, durations):
        trace = _chain_trace(durations)
        injected = DelayInjector(trace).inject({})
        assert injected.latency_ms == pytest.approx(trace.latency_ms, rel=1e-9)


class TestKLProperties:
    @given(
        st.lists(st.floats(min_value=1.0, max_value=1_000.0, allow_nan=False), min_size=5, max_size=100),
        st.lists(st.floats(min_value=1.0, max_value=1_000.0, allow_nan=False), min_size=5, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_kl_non_negative_and_zero_on_self(self, a, b):
        assert kl_divergence(a, b) >= 0.0
        assert kl_divergence(a, a) < 0.05
