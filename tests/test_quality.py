"""Tests for the migration quality models: delay injection, availability, cost, evaluator."""

import pytest

from repro.cluster import CLOUD, ON_PREM, MigrationPlan, NodeSpec, default_network_model
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    DelayInjector,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
)
from repro.telemetry import Span, Trace


@pytest.fixture(scope="module")
def quality_stack(tiny_telemetry):
    """Performance/availability/cost models built from the tiny app's telemetry."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    network = default_network_model()
    performance = ApiPerformanceModel(
        traces_by_api={api: p.sample_traces for api, p in profiles.items()},
        footprint=footprint,
        network=network,
        baseline_plan=baseline,
        traces_per_api=20,
    )
    availability = ApiAvailabilityModel(
        stateful_components_by_api={api: p.stateful_components for api, p in profiles.items()},
        baseline_plan=baseline,
    )
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)
    cost = CloudCostModel(
        catalog=PricingCatalog(),
        estimate=estimate,
        footprint=footprint,
        storage_by_component={c.name: c.resources.storage_gb for c in app.components},
        baseline_plan=baseline,
        time_compression=288.0,
    )
    return app, baseline, performance, availability, cost, estimate


def simple_trace():
    """Root with a parallel pair, a sequential child and a background child."""
    spans = [
        Span("t", "root", None, "Frontend", "/api", 0.0, 20.0),
        Span("t", "p1", "root", "A", "op", 2.0, 6.0),
        Span("t", "p2", "root", "B", "op", 2.5, 8.0),
        Span("t", "seq", "root", "C", "op", 11.0, 5.0),
        Span("t", "bg", "root", "D", "op", 16.5, 30.0),
    ]
    return Trace("t", "/api", spans)


class TestDelayInjector:
    def test_no_delay_is_identity(self):
        trace = simple_trace()
        injected = DelayInjector(trace).inject({})
        assert injected.latency_ms == pytest.approx(trace.latency_ms)
        for original, new in zip(
            sorted(trace.spans, key=lambda s: s.span_id),
            sorted(injected.spans, key=lambda s: s.span_id),
        ):
            assert new.start_ms == pytest.approx(original.start_ms)

    def test_sequential_delay_propagates_to_root(self):
        trace = simple_trace()
        latency = DelayInjector(trace).injected_latency_ms({("Frontend", "C"): 40.0})
        assert latency == pytest.approx(trace.latency_ms + 40.0)

    def test_parallel_delay_absorbed_by_slower_sibling(self):
        trace = simple_trace()
        # Delaying A by 2ms keeps it finishing before B (which ends at 10.5), so the
        # end-to-end latency is unchanged.
        latency = DelayInjector(trace).injected_latency_ms({("Frontend", "A"): 2.0})
        assert latency == pytest.approx(trace.latency_ms)

    def test_parallel_delay_beyond_sibling_extends_latency(self):
        trace = simple_trace()
        latency = DelayInjector(trace).injected_latency_ms({("Frontend", "A"): 50.0})
        assert latency > trace.latency_ms + 40.0

    def test_background_delay_has_no_effect(self):
        trace = simple_trace()
        latency = DelayInjector(trace).injected_latency_ms({("Frontend", "D"): 500.0})
        assert latency == pytest.approx(trace.latency_ms)

    def test_delay_on_nested_edge(self, tiny_telemetry):
        app, result = tiny_telemetry
        trace = result.telemetry.get_traces("/write", limit=1)[0]
        base = trace.latency_ms
        injected = DelayInjector(trace).injected_latency_ms({("ServiceB", "Database"): 46.0})
        assert injected == pytest.approx(base + 46.0, abs=1.0)


class TestApiPerformanceModel:
    def test_baseline_plan_has_unit_impact(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        for api in performance.apis:
            assert performance.estimate(api, baseline).impact_factor == pytest.approx(1.0)
        assert performance.qperf(baseline) == pytest.approx(1.0)

    def test_edge_delays_only_for_crossing_edges(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        delays = performance.edge_delays("/write", plan)
        assert ("ServiceB", "Database") in delays
        assert all(delta > 20.0 for delta in delays.values())
        assert performance.edge_delays("/write", baseline) == {}

    def test_offloading_background_component_keeps_latency(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["Notifier"])
        assert performance.estimate("/read", plan).impact_factor == pytest.approx(1.0, abs=0.05)

    def test_offloading_sequential_store_hurts_write_api(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        assert performance.estimate("/write", plan).impact_factor > 3.0

    def test_qperf_weighted_by_critical_apis(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        unweighted = performance.qperf(plan)
        weighted = performance.qperf(plan, {"/write": 2.0, "/read": 1.0})
        assert weighted > unweighted

    def test_estimate_all_and_impact_factors(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceB"])
        estimates = performance.estimate_all(plan)
        factors = performance.impact_factors(plan)
        assert set(estimates) == set(factors) == set(performance.apis)
        for api, estimate in estimates.items():
            assert factors[api] == pytest.approx(estimate.impact_factor)

    def test_moving_whole_cloud_restores_latency(self, quality_stack):
        app, baseline, performance, *_ = quality_stack
        plan = MigrationPlan.all_cloud(app.component_names)
        # Everything collocated again (in the cloud): no inter-DC edges remain.
        assert performance.qperf(plan) == pytest.approx(1.0, abs=0.05)

    def test_api_components_and_edges(self, quality_stack):
        _app, _baseline, performance, *_ = quality_stack
        assert ("Frontend", "ServiceA") in performance.invocation_edges()
        assert "Database" in performance.api_components()["/write"]


class TestApiAvailabilityModel:
    def test_disruption_requires_stateful_move(self, quality_stack):
        app, baseline, _perf, availability, *_ = quality_stack
        stateless_move = MigrationPlan.from_offloaded(app.component_names, ["ServiceA"])
        stateful_move = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        assert availability.qavai(stateless_move) == 0.0
        assert availability.disrupted_apis(stateful_move) == ["/read", "/write"]
        assert availability.qavai(stateful_move) == 2.0

    def test_weighted_disruption(self, quality_stack):
        app, _baseline, _perf, availability, *_ = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        assert availability.qavai(plan, {"/read": 2.0, "/write": 1.0}) == 3.0

    def test_estimate_object(self, quality_stack):
        app, _baseline, _perf, availability, *_ = quality_stack
        estimate = availability.estimate(
            MigrationPlan.from_offloaded(app.component_names, ["Database"])
        )
        assert estimate.disrupted_count == 2
        assert estimate.weighted_disruption == 2.0


class TestCloudCostModel:
    def test_all_on_prem_costs_nothing(self, quality_stack):
        app, baseline, _perf, _avail, cost, _est = quality_stack
        assert cost.qcost(baseline) == pytest.approx(0.0)

    def test_offloading_increases_cost(self, quality_stack):
        app, _baseline, _perf, _avail, cost, _est = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceA", "ServiceB"])
        assert cost.qcost(plan) > 0.0

    def test_cost_breakdown_components(self, quality_stack):
        app, _baseline, _perf, _avail, cost, _est = quality_stack
        plan = MigrationPlan.from_offloaded(
            app.component_names, ["ServiceA", "ServiceB", "Database"]
        )
        estimate = cost.estimate_cost(plan)
        assert estimate.compute_usd > 0.0
        assert estimate.storage_usd > 0.0  # the stateful Database moved
        assert estimate.traffic_usd >= 0.0
        assert estimate.total_usd == pytest.approx(
            estimate.compute_usd + estimate.storage_usd + estimate.traffic_usd
        )
        assert estimate.per_day_usd() > estimate.total_usd  # period is shorter than a day
        breakdown = estimate.breakdown_per_day()
        assert set(breakdown) == {"compute", "storage", "traffic"}

    def test_no_storage_cost_without_stateful_moves(self, quality_stack):
        app, _baseline, _perf, _avail, cost, _est = quality_stack
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceA"])
        assert cost.storage_cost(plan) == 0.0

    def test_traffic_cost_counts_only_cross_dc_pairs(self, quality_stack):
        app, _baseline, _perf, _avail, cost, _est = quality_stack
        collocated = MigrationPlan.all_cloud(app.component_names)
        assert cost.traffic_cost(collocated) == 0.0
        split = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        assert cost.traffic_cost(split) > 0.0

    def test_catalog_validation(self):
        with pytest.raises(ValueError):
            PricingCatalog(storage_usd_per_gb_month=-1.0)

    def test_node_series_in_estimate(self, quality_stack):
        app, _baseline, _perf, _avail, cost, _est = quality_stack
        plan = MigrationPlan.all_cloud(app.component_names)
        estimate = cost.estimate_cost(plan)
        assert len(estimate.node_series) == _est.steps
        assert all(n >= 1 for n in estimate.node_series)


class TestPreferences:
    def test_api_weights(self):
        prefs = MigrationPreferences(critical_apis=["/a"])
        assert prefs.api_weight("/a") == 2.0
        assert prefs.api_weight("/b") == 1.0
        assert prefs.api_weights(["/a", "/b"]) == {"/a": 2.0, "/b": 1.0}

    def test_pin_checks(self):
        prefs = MigrationPreferences.pin_on_prem(["X"])
        plan_ok = MigrationPlan.all_on_prem(["X", "Y"])
        plan_bad = MigrationPlan.from_offloaded(["X", "Y"], ["X"])
        assert prefs.pins_respected(plan_ok)
        assert prefs.pin_violations(plan_bad) == ["X"]

    def test_with_helpers_do_not_mutate(self):
        prefs = MigrationPreferences(critical_apis=["/a"], budget_usd=10.0)
        other = prefs.with_critical_apis(["/b"]).with_budget(5.0)
        assert prefs.critical_apis == ["/a"]
        assert prefs.budget_usd == 10.0
        assert other.critical_apis == ["/b"]
        assert other.budget_usd == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationPreferences(critical_weight=0.0)
        with pytest.raises(ValueError):
            MigrationPreferences(budget_usd=-1.0)
        with pytest.raises(ValueError):
            MigrationPreferences(onprem_limits={"cpu_millicores": -5.0})


class TestQualityEvaluator:
    def _evaluator(self, quality_stack, preferences=None):
        app, baseline, performance, availability, cost, estimate = quality_stack
        return app, QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences or MigrationPreferences(),
            estimate=estimate,
        )

    def test_objectives_and_feasibility(self, quality_stack):
        app, evaluator = self._evaluator(quality_stack)
        quality = evaluator.evaluate(MigrationPlan.all_on_prem(app.component_names))
        assert quality.feasible
        assert quality.objectives() == (quality.perf, quality.avail, quality.cost)

    def test_cache_hits_do_not_recount(self, quality_stack):
        app, evaluator = self._evaluator(quality_stack)
        plan = MigrationPlan.from_offloaded(app.component_names, ["ServiceA"])
        evaluator.evaluate(plan)
        first = evaluator.evaluations
        evaluator.evaluate(plan)
        assert evaluator.evaluations == first
        assert evaluator.cache_size() >= 1

    def test_pin_constraint_violation(self, quality_stack):
        prefs = MigrationPreferences.pin_on_prem(["Database"])
        app, evaluator = self._evaluator(quality_stack, prefs)
        plan = MigrationPlan.from_offloaded(app.component_names, ["Database"])
        quality = evaluator.evaluate(plan)
        assert not quality.feasible
        assert any("Database" in v for v in quality.violations)

    def test_onprem_limit_violation(self, quality_stack):
        prefs = MigrationPreferences(onprem_limits={"cpu_millicores": 1.0})
        app, evaluator = self._evaluator(quality_stack, prefs)
        quality = evaluator.evaluate(MigrationPlan.all_on_prem(app.component_names))
        assert not quality.feasible
        # Offloading everything satisfies the on-prem limit again.
        assert evaluator.is_feasible(MigrationPlan.all_cloud(app.component_names))

    def test_budget_violation(self, quality_stack):
        prefs = MigrationPreferences(budget_usd=0.0)
        app, evaluator = self._evaluator(quality_stack, prefs)
        plan = MigrationPlan.all_cloud(app.component_names)
        assert not evaluator.is_feasible(plan)

    def test_dominates(self, quality_stack):
        app, evaluator = self._evaluator(quality_stack)
        base = evaluator.evaluate(MigrationPlan.all_on_prem(app.component_names))
        moved = evaluator.evaluate(MigrationPlan.from_offloaded(app.component_names, ["Database"]))
        assert base.dominates(moved)
        assert not moved.dominates(base)
