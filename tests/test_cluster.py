"""Unit tests for the hybrid-cloud substrate: topology, network, placement, autoscalers."""

import json
import math

import pytest

from repro.cluster import (
    CLOUD,
    ON_PREM,
    AutoscalerConfig,
    ClusterAutoscaler,
    Datacenter,
    HybridCluster,
    LinkSpec,
    MigrationPlan,
    NetworkModel,
    NodeSpec,
    StorageAutoscaler,
    default_hybrid_cluster,
    default_network_model,
)


class TestNodeSpec:
    def test_rejects_non_positive_resources(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", cpu_millicores=0, memory_mb=100)
        with pytest.raises(ValueError):
            NodeSpec("bad", cpu_millicores=100, memory_mb=-1)

    def test_cpu_cores_property(self):
        assert NodeSpec("n", 4_000, 8_192).cpu_cores == 4.0


class TestDatacenter:
    def test_requires_node_count_or_elastic(self):
        spec = NodeSpec("n", 1_000, 1_024)
        with pytest.raises(ValueError):
            Datacenter("dc", 0, spec)
        Datacenter("dc", 0, spec, elastic=True)

    def test_capacity_finite_for_on_prem(self):
        spec = NodeSpec("n", 1_000, 1_024, storage_gb=100)
        dc = Datacenter("dc", 0, spec, node_count=3)
        assert dc.cpu_capacity_millicores() == 3_000
        assert dc.memory_capacity_mb() == 3 * 1_024
        assert dc.capacity("storage") == 300

    def test_capacity_infinite_for_elastic(self):
        spec = NodeSpec("n", 1_000, 1_024)
        dc = Datacenter("dc", 1, spec, elastic=True)
        assert dc.cpu_capacity_millicores() == math.inf

    def test_unknown_resource(self):
        dc = default_hybrid_cluster().on_prem
        with pytest.raises(KeyError):
            dc.capacity("gpus")


class TestHybridCluster:
    def test_default_cluster_has_two_locations(self):
        cluster = default_hybrid_cluster()
        assert cluster.location_ids == [ON_PREM, CLOUD]
        assert not cluster.on_prem.elastic
        assert cluster.cloud.elastic

    def test_rejects_duplicate_location_ids(self):
        spec = NodeSpec("n", 1_000, 1_024)
        dcs = [
            Datacenter("a", 0, spec, node_count=1),
            Datacenter("b", 0, spec, node_count=1),
        ]
        with pytest.raises(ValueError):
            HybridCluster(dcs)

    def test_unknown_location(self):
        with pytest.raises(KeyError):
            default_hybrid_cluster().datacenter(7)

    def test_on_prem_capacity_accessor(self):
        cluster = default_hybrid_cluster(on_prem_nodes=10, on_prem_cpu_cores=20)
        assert cluster.on_prem_capacity("cpu") == 200_000


class TestNetworkModel:
    def test_link_spec_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(-1.0, 100.0)
        with pytest.raises(ValueError):
            LinkSpec(1.0, 0.0)

    def test_transfer_time_includes_serialization(self):
        link = LinkSpec(latency_ms=10.0, bandwidth_mbps=8.0)  # 1000 bytes/ms, RTT 10ms
        assert link.transfer_time_ms(1_000.0) == pytest.approx(5.0 + 1.0)

    def test_default_model_matches_paper_measurements(self):
        network = default_network_model()
        assert network.latency_ms(ON_PREM, ON_PREM) == pytest.approx(0.168)
        assert network.latency_ms(ON_PREM, CLOUD) == pytest.approx(23.015)
        assert network.bandwidth_mbps(ON_PREM, CLOUD) == pytest.approx(921.0)

    def test_symmetry(self):
        network = default_network_model()
        assert network.latency_ms(CLOUD, ON_PREM) == network.latency_ms(ON_PREM, CLOUD)

    def test_round_trip(self):
        network = default_network_model()
        rt = network.round_trip_ms(ON_PREM, CLOUD, 1_000.0, 2_000.0)
        # One full RTT (request half + response half) plus serialization of both payloads.
        assert rt == pytest.approx(23.015 + 3_000.0 / (921.0 * 125.0), abs=0.1)

    def test_extra_delay_positive_when_separating(self):
        network = default_network_model()
        delta = network.extra_delay_ms((ON_PREM, ON_PREM), (ON_PREM, CLOUD), 500.0, 500.0)
        assert delta > 22.0

    def test_extra_delay_clamped_at_zero_when_collocating(self):
        network = default_network_model()
        delta = network.extra_delay_ms((ON_PREM, CLOUD), (CLOUD, CLOUD), 500.0, 500.0)
        assert delta == 0.0

    def test_missing_link_raises(self):
        network = NetworkModel({(0, 0): LinkSpec(1.0, 100.0)})
        with pytest.raises(KeyError):
            network.link(0, 1)


class TestMigrationPlan:
    COMPONENTS = ["A", "B", "C", "D"]

    def test_all_on_prem_and_all_cloud(self):
        plan = MigrationPlan.all_on_prem(self.COMPONENTS)
        assert plan.offload_count() == 0
        plan = MigrationPlan.all_cloud(self.COMPONENTS)
        assert plan.offload_count() == 4

    def test_from_offloaded(self):
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["B", "D"])
        assert sorted(plan.offloaded()) == ["B", "D"]
        assert sorted(plan.on_prem()) == ["A", "C"]

    def test_from_offloaded_rejects_unknown(self):
        with pytest.raises(ValueError):
            MigrationPlan.from_offloaded(self.COMPONENTS, ["Z"])

    def test_vector_round_trip(self):
        plan = MigrationPlan.from_vector(self.COMPONENTS, [0, 1, 0, 1])
        assert plan.to_vector() == [0, 1, 0, 1]
        assert MigrationPlan.from_vector(self.COMPONENTS, plan.to_vector()) == plan

    def test_vector_length_mismatch(self):
        with pytest.raises(ValueError):
            MigrationPlan.from_vector(self.COMPONENTS, [0, 1])

    def test_mapping_interface(self):
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["A"])
        assert plan["A"] == CLOUD
        assert plan["B"] == ON_PREM
        assert len(plan) == 4
        assert set(plan) == set(self.COMPONENTS)
        with pytest.raises(KeyError):
            plan["Z"]

    def test_is_cross_location(self):
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["A"])
        assert plan.is_cross_location("A", "B")
        assert not plan.is_cross_location("B", "C")

    def test_moved_components(self):
        baseline = MigrationPlan.all_on_prem(self.COMPONENTS)
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["C"])
        assert plan.moved_components(baseline) == ["C"]

    def test_with_location_returns_new_plan(self):
        plan = MigrationPlan.all_on_prem(self.COMPONENTS)
        moved = plan.with_location("A", CLOUD)
        assert plan["A"] == ON_PREM
        assert moved["A"] == CLOUD

    def test_with_pinned(self):
        plan = MigrationPlan.all_cloud(self.COMPONENTS)
        pinned = plan.with_pinned({"A": ON_PREM})
        assert pinned["A"] == ON_PREM
        with pytest.raises(KeyError):
            plan.with_pinned({"Z": ON_PREM})

    def test_json_round_trip(self):
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["B"])
        restored = MigrationPlan.from_json(plan.to_json(), order=self.COMPONENTS)
        assert restored == plan
        assert json.loads(plan.to_json())["B"] == CLOUD

    def test_hash_and_equality(self):
        plan_a = MigrationPlan.from_offloaded(self.COMPONENTS, ["B"])
        plan_b = MigrationPlan.from_offloaded(self.COMPONENTS, ["B"])
        assert plan_a == plan_b
        assert hash(plan_a) == hash(plan_b)
        assert plan_a != MigrationPlan.all_on_prem(self.COMPONENTS)

    def test_components_at(self):
        plan = MigrationPlan.from_offloaded(self.COMPONENTS, ["B", "C"])
        assert plan.components_at(CLOUD) == ["B", "C"]


class TestAutoscalers:
    def test_autoscaler_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(cpu_headroom=1.5)

    def test_nodes_for_zero_demand(self):
        scaler = ClusterAutoscaler(NodeSpec("n", 2_000, 8_192))
        assert scaler.nodes_for(0.0, 0.0) == 0

    def test_nodes_for_cpu_bound(self):
        scaler = ClusterAutoscaler(NodeSpec("n", 2_000, 8_192), AutoscalerConfig(0.2, 0.2))
        # (1.2 * 3000) / 2000 = 1.8 -> 2 nodes
        assert scaler.nodes_for(3_000.0, 100.0) == 2

    def test_nodes_for_memory_bound(self):
        scaler = ClusterAutoscaler(NodeSpec("n", 2_000, 1_000), AutoscalerConfig(0.2, 0.2))
        assert scaler.nodes_for(100.0, 5_000.0) == 6

    def test_node_series_alignment(self):
        scaler = ClusterAutoscaler(NodeSpec("n", 2_000, 8_192))
        with pytest.raises(ValueError):
            scaler.node_series([1.0], [1.0, 2.0])
        assert scaler.node_series([0.0, 2_000.0], [0.0, 10.0]) == [0, 2]

    def test_storage_initial_capacity(self):
        scaler = StorageAutoscaler()
        assert scaler.initial_capacity_gb(50.0) == 100.0
        with pytest.raises(ValueError):
            scaler.initial_capacity_gb(-1.0)

    def test_storage_capacity_never_shrinks_and_grows_on_pressure(self):
        scaler = StorageAutoscaler(AutoscalerConfig(storage_headroom=0.2))
        series = scaler.capacity_series([10.0, 85.0, 90.0, 50.0], migrated_data_gb=50.0)
        assert series[0] == 100.0
        assert series[1] >= 100.0
        assert all(b >= a for a, b in zip(series, series[1:])) or series[-1] >= 100.0

    def test_storage_rejects_negative_usage(self):
        scaler = StorageAutoscaler()
        with pytest.raises(ValueError):
            scaler.capacity_series([-1.0], 10.0)
