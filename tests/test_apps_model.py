"""Unit tests for the application topology model."""

import pytest

from repro.apps import (
    ApiEndpoint,
    Application,
    CallNode,
    Component,
    ExecutionMode,
    PayloadSpec,
    ResourceProfile,
)


class TestResourceProfile:
    def test_expected_cpu_scales_with_rps(self):
        profile = ResourceProfile(cpu_millicores_idle=10, cpu_millicores_per_rps=2)
        assert profile.expected_cpu(0) == 10
        assert profile.expected_cpu(5) == 20

    def test_expected_cpu_clamps_negative_rps(self):
        profile = ResourceProfile(cpu_millicores_idle=10, cpu_millicores_per_rps=2)
        assert profile.expected_cpu(-5) == 10

    def test_expected_memory(self):
        profile = ResourceProfile(memory_mb_idle=100, memory_mb_per_rps=1)
        assert profile.expected_memory(10) == 110


class TestComponent:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Component("")

    def test_str_mentions_statefulness(self):
        assert "stateful" in str(Component("Db", stateful=True))
        assert "stateless" in str(Component("Svc"))


class TestPayloadSpec:
    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            PayloadSpec(-1.0, 10.0)
        with pytest.raises(ValueError):
            PayloadSpec(1.0, -10.0)

    def test_rejects_negative_cv(self):
        with pytest.raises(ValueError):
            PayloadSpec(1.0, 1.0, cv=-0.1)

    def test_sample_is_non_negative_and_near_mean(self):
        import numpy as np

        spec = PayloadSpec(1_000.0, 500.0, cv=0.05)
        rng = np.random.default_rng(0)
        samples = [spec.sample(rng) for _ in range(200)]
        req_mean = sum(s[0] for s in samples) / len(samples)
        resp_mean = sum(s[1] for s in samples) / len(samples)
        assert all(s[0] >= 0 and s[1] >= 0 for s in samples)
        assert req_mean == pytest.approx(1_000.0, rel=0.05)
        assert resp_mean == pytest.approx(500.0, rel=0.05)


class TestCallNode:
    def _tree(self):
        leaf_a = CallNode("A", "opA", work_ms=2.0)
        leaf_b = CallNode("B", "opB", work_ms=3.0)
        leaf_c = CallNode("C", "opC", work_ms=1.0)
        root = CallNode("Root", "op", work_ms=4.0, post_work_fraction=0.25)
        root.call(leaf_a, ExecutionMode.PARALLEL, gap_ms=0.0)
        root.call(leaf_b, ExecutionMode.PARALLEL, gap_ms=0.0)
        root.call(leaf_c, ExecutionMode.SEQUENTIAL, gap_ms=0.0)
        return root

    def test_walk_visits_all_nodes(self):
        root = self._tree()
        assert {n.component for n in root.walk()} == {"Root", "A", "B", "C"}

    def test_components_and_size(self):
        root = self._tree()
        assert root.components() == {"Root", "A", "B", "C"}
        assert root.size() == 4

    def test_depth(self):
        root = self._tree()
        assert root.depth() == 2
        assert CallNode("X", "leaf").depth() == 1

    def test_edges_report_modes(self):
        root = self._tree()
        edges = list(root.edges())
        assert ("Root", "A") in [(s, d) for s, d, _n, _m in edges]
        modes = {d: m for _s, d, _n, m in edges}
        assert modes["A"] is ExecutionMode.PARALLEL
        assert modes["C"] is ExecutionMode.SEQUENTIAL

    def test_invocation_count(self):
        root = self._tree()
        assert root.invocation_count("Root", "A") == 1
        assert root.invocation_count("A", "Root") == 0

    def test_nominal_latency_parallel_then_sequential(self):
        root = self._tree()
        # pre = 3, parallel max(2,3)=3, sequential C=1, post = 1 -> 8
        assert root.nominal_latency_ms() == pytest.approx(8.0)

    def test_nominal_latency_ignores_background(self):
        root = CallNode("Root", "op", work_ms=2.0, post_work_fraction=0.5)
        root.call(CallNode("Bg", "op", work_ms=50.0), ExecutionMode.BACKGROUND)
        assert root.nominal_latency_ms() == pytest.approx(2.0)

    def test_rejects_invalid_post_work_fraction(self):
        with pytest.raises(ValueError):
            CallNode("X", "op", post_work_fraction=1.5)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            CallNode("X", "op", work_ms=-1.0)

    def test_call_accepts_string_mode(self):
        root = CallNode("Root", "op")
        root.call(CallNode("A", "op"), "parallel")
        assert root.calls[0].mode is ExecutionMode.PARALLEL


class TestApiEndpoint:
    def test_requires_leading_slash(self):
        with pytest.raises(ValueError):
            ApiEndpoint("read", CallNode("Frontend", "/read"))

    def test_entry_component_and_span_count(self):
        root = CallNode("Frontend", "/read")
        root.call(CallNode("Svc", "op"))
        api = ApiEndpoint("/read", root)
        assert api.entry_component == "Frontend"
        assert api.span_count() == 2

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ApiEndpoint("/read", CallNode("Frontend", "/read"), weight=-1)


class TestApplication:
    def test_validates_unknown_components(self):
        root = CallNode("Frontend", "/read")
        root.call(CallNode("Ghost", "op"))
        with pytest.raises(ValueError, match="Ghost"):
            Application("bad", [Component("Frontend")], [ApiEndpoint("/read", root)])

    def test_rejects_duplicate_components(self):
        with pytest.raises(ValueError):
            Application(
                "dup",
                [Component("A"), Component("A")],
                [ApiEndpoint("/x", CallNode("A", "/x"))],
            )

    def test_rejects_duplicate_apis(self, tiny_app):
        api = tiny_app.api("/read")
        with pytest.raises(ValueError):
            Application("dup", tiny_app.components, [api, api])

    def test_component_lookup(self, tiny_app):
        assert tiny_app.component("Database").stateful
        with pytest.raises(KeyError):
            tiny_app.component("Nope")

    def test_api_lookup(self, tiny_app):
        assert tiny_app.api("/read").name == "/read"
        with pytest.raises(KeyError):
            tiny_app.api("/nope")

    def test_stateful_partition(self, tiny_app):
        assert tiny_app.stateful_components() == ["Database"]
        assert "Database" not in tiny_app.stateless_components()
        assert len(tiny_app.stateless_components()) == 5

    def test_components_of_api(self, tiny_app):
        assert tiny_app.components_of_api("/read") == {
            "Frontend",
            "ServiceA",
            "Cache",
            "Database",
            "Notifier",
        }

    def test_stateful_components_of_api(self, tiny_app):
        assert tiny_app.stateful_components_of_api("/read") == {"Database"}
        assert tiny_app.stateful_components_of_api("/write") == {"Database"}

    def test_apis_using_component(self, tiny_app):
        assert set(tiny_app.apis_using_component("Database")) == {"/read", "/write"}
        assert tiny_app.apis_using_component("ServiceB") == ["/write"]

    def test_communication_edges(self, tiny_app):
        edges = tiny_app.communication_edges()
        assert ("Frontend", "ServiceA") in edges
        assert ("ServiceB", "Database") in edges

    def test_api_weights_normalized(self, tiny_app):
        weights = tiny_app.api_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["/read"] == pytest.approx(0.7)

    def test_total_storage(self, tiny_app):
        assert tiny_app.total_storage_gb() == pytest.approx(10.0)
        assert tiny_app.total_storage_gb(["Frontend"]) == 0.0

    def test_summary(self, tiny_app):
        summary = tiny_app.summary()
        assert summary["components"] == 6
        assert summary["apis"] == 2
        assert summary["search_space"] == 2**6
