"""Structural tests of the two evaluation applications (paper Section 5.1)."""

import pytest

from repro.apps import ExecutionMode


class TestSocialNetwork:
    def test_component_counts_match_paper(self, social_app):
        assert len(social_app.components) == 29
        assert len(social_app.stateful_components()) == 6
        assert len(social_app.stateless_components()) == 23

    def test_api_count_matches_paper(self, social_app):
        assert len(social_app.apis) == 9

    def test_search_space_exceeds_500_million(self, social_app):
        assert social_app.summary()["search_space"] > 500_000_000

    def test_expected_apis_present(self, social_app):
        expected = {
            "/register",
            "/login",
            "/follow",
            "/unfollow",
            "/composePost",
            "/homeTimeline",
            "/userTimeline",
            "/uploadMedia",
            "/getMedia",
        }
        assert set(social_app.api_names) == expected

    def test_compose_post_has_all_workflow_patterns(self, social_app):
        modes = {mode for _s, _d, _n, mode in social_app.api("/composePost").edges()}
        assert modes == {
            ExecutionMode.PARALLEL,
            ExecutionMode.SEQUENTIAL,
            ExecutionMode.BACKGROUND,
        }

    def test_mongodbs_are_stateful(self, social_app):
        for name in social_app.stateful_components():
            assert name.endswith("MongoDB")
            assert social_app.component(name).resources.storage_gb > 0

    def test_compose_post_is_the_most_complex_api(self, social_app):
        sizes = {api.name: api.span_count() for api in social_app.apis}
        assert max(sizes, key=sizes.get) == "/composePost"

    def test_media_apis_enter_through_media_nginx(self, social_app):
        assert social_app.api("/uploadMedia").entry_component == "MediaNGINX"
        assert social_app.api("/getMedia").entry_component == "MediaNGINX"

    def test_api_weights_sum_to_one(self, social_app):
        assert sum(social_app.api_weights().values()) == pytest.approx(1.0)

    def test_register_payloads_follow_figure19(self, social_app):
        """The /register edge sizes should match Figure 19's reported magnitudes."""
        sizes = {
            (src, dst): node.payload
            for src, dst, node, _m in social_app.api("/register").edges()
        }
        user_mongo = sizes[("UserService", "UserMongoDB")]
        assert user_mongo.request_bytes == pytest.approx(561.0)
        assert user_mongo.response_bytes == pytest.approx(144.0)
        graph_mongo = sizes[("SocialGraphService", "SocialGraphMongoDB")]
        assert graph_mongo.request_bytes == pytest.approx(205.0)

    def test_every_api_reaches_a_stateful_store(self, social_app):
        for api in social_app.apis:
            assert social_app.stateful_components_of_api(api.name)

    def test_nominal_latencies_are_single_digit_to_tens_of_ms(self, social_app):
        for api in social_app.apis:
            latency = api.root.nominal_latency_ms()
            assert 1.0 < latency < 50.0, api.name


class TestHotelReservation:
    def test_component_counts_match_paper(self, hotel_app):
        assert len(hotel_app.components) == 18
        assert len(hotel_app.stateful_components()) == 6
        assert len(hotel_app.stateless_components()) == 12

    def test_api_count_matches_paper(self, hotel_app):
        assert len(hotel_app.apis) == 5
        assert set(hotel_app.api_names) == {
            "/home",
            "/hotels",
            "/recommendations",
            "/user",
            "/reservation",
        }

    def test_frontend_is_the_single_entry_point(self, hotel_app):
        for api in hotel_app.apis:
            assert api.entry_component == "FrontendService"

    def test_hotels_api_uses_parallel_search(self, hotel_app):
        modes = {mode for _s, _d, _n, mode in hotel_app.api("/hotels").edges()}
        assert ExecutionMode.PARALLEL in modes

    def test_reservation_touches_reserve_mongo(self, hotel_app):
        assert "ReserveMongoDB" in hotel_app.components_of_api("/reservation")

    def test_user_api_is_smallest(self, hotel_app):
        sizes = {api.name: api.span_count() for api in hotel_app.apis}
        assert min(sizes, key=sizes.get) == "/user"

    def test_applications_have_distinct_names(self, hotel_app, social_app):
        assert hotel_app.name != social_app.name
