"""Tests for the request execution simulator (the ground-truth substrate)."""

import pytest

from repro.cluster import CLOUD, MigrationPlan, default_hybrid_cluster, default_network_model
from repro.simulator import (
    ContentionModel,
    SimulationEngine,
    component_operation_counts,
    simulate_workload,
)
from repro.workload import ApiRequest, WorkloadGenerator, default_scenario


def single_request(api="/read", time_ms=0.0, scale=1.0):
    return ApiRequest(time_ms=time_ms, api=api, payload_scale=scale)


class TestSimulationEngine:
    def test_trace_structure_matches_call_tree(self, tiny_app, tiny_plan_all_onprem, default_network):
        engine = SimulationEngine(tiny_app, tiny_plan_all_onprem, default_network, seed=1)
        outcome = engine.execute(single_request("/read"))
        trace = outcome.trace
        assert trace.api == "/read"
        assert len(trace.spans) == tiny_app.api("/read").span_count()
        assert trace.root.component == "Frontend"
        assert set(trace.components()) == tiny_app.components_of_api("/read")

    def test_latency_close_to_nominal_on_single_site(self, tiny_app, tiny_plan_all_onprem, default_network):
        engine = SimulationEngine(tiny_app, tiny_plan_all_onprem, default_network, seed=1)
        latencies = [engine.execute(single_request("/read", t * 10.0)).latency_ms for t in range(30)]
        nominal = tiny_app.api("/read").root.nominal_latency_ms()
        mean = sum(latencies) / len(latencies)
        # Intra-datacenter transfers add a little on top of pure compute.
        assert nominal < mean < nominal + 6.0

    def test_offloading_sequential_dependency_adds_latency(self, tiny_app, default_network):
        on_prem = MigrationPlan.all_on_prem(tiny_app.component_names)
        split = MigrationPlan.from_offloaded(tiny_app.component_names, ["Database"])
        base = SimulationEngine(tiny_app, on_prem, default_network, seed=1)
        moved = SimulationEngine(tiny_app, split, default_network, seed=1)
        base_lat = [base.execute(single_request("/write", i * 10.0)).latency_ms for i in range(20)]
        moved_lat = [moved.execute(single_request("/write", i * 10.0)).latency_ms for i in range(20)]
        # One synchronous cross-datacenter invocation costs about one inter-DC RTT (23ms).
        assert sum(moved_lat) / 20 > sum(base_lat) / 20 + 20.0

    def test_offloading_background_component_has_no_latency_impact(self, tiny_app, default_network):
        on_prem = MigrationPlan.all_on_prem(tiny_app.component_names)
        split = MigrationPlan.from_offloaded(tiny_app.component_names, ["Notifier"])
        base = SimulationEngine(tiny_app, on_prem, default_network, seed=1)
        moved = SimulationEngine(tiny_app, split, default_network, seed=1)
        base_lat = [base.execute(single_request("/read", i * 10.0)).latency_ms for i in range(30)]
        moved_lat = [moved.execute(single_request("/read", i * 10.0)).latency_ms for i in range(30)]
        assert abs(sum(moved_lat) - sum(base_lat)) / 30 < 2.0

    def test_cross_dc_invocations_counted(self, tiny_app, default_network):
        split = MigrationPlan.from_offloaded(tiny_app.component_names, ["Database"])
        engine = SimulationEngine(tiny_app, split, default_network, seed=1)
        outcome = engine.execute(single_request("/write"))
        assert outcome.cross_dc_invocations >= 1

    def test_whole_cloud_placement_has_no_cross_dc(self, tiny_app, default_network):
        plan = MigrationPlan.all_cloud(tiny_app.component_names)
        engine = SimulationEngine(tiny_app, plan, default_network, seed=1)
        assert engine.execute(single_request("/read")).cross_dc_invocations == 0

    def test_telemetry_recorded(self, tiny_app, tiny_plan_all_onprem, default_network):
        engine = SimulationEngine(tiny_app, tiny_plan_all_onprem, default_network, seed=1)
        engine.execute(single_request("/read"))
        telemetry = engine.telemetry
        assert len(telemetry.traces) == 1
        assert ("Frontend", "ServiceA") in telemetry.observed_pairs()
        assert telemetry.component_total("ServiceA", "requests") == 1.0

    def test_payload_scale_inflates_mesh_bytes(self, tiny_app, tiny_plan_all_onprem, default_network):
        engine = SimulationEngine(tiny_app, tiny_plan_all_onprem, default_network, seed=1)
        engine.execute(single_request("/read", 0.0, scale=1.0))
        small = engine.telemetry.mesh.total_bytes("ServiceA", "Database")
        engine.execute(single_request("/read", 10_000.0, scale=3.0))
        total = engine.telemetry.mesh.total_bytes("ServiceA", "Database")
        assert total - small > small  # the scaled request moved more bytes

    def test_plan_must_cover_all_components(self, tiny_app, default_network):
        partial = MigrationPlan.all_on_prem(tiny_app.component_names[:-1])
        with pytest.raises(ValueError):
            SimulationEngine(tiny_app, partial, default_network)


class TestContentionModel:
    def test_no_slowdown_when_underloaded(self, tiny_app, tiny_plan_all_onprem, default_cluster):
        requests = [single_request("/read", i * 100.0) for i in range(10)]
        model = ContentionModel(tiny_app, tiny_plan_all_onprem, default_cluster, requests)
        assert model(0, 0.0) == 1.0
        assert model.peak_utilization_factor() == 1.0

    def test_slowdown_when_capacity_tiny(self, tiny_app, tiny_plan_all_onprem):
        cluster = default_hybrid_cluster(on_prem_nodes=1, on_prem_cpu_cores=0.05, on_prem_memory_gb=1)
        requests = [single_request("/read", i * 5.0) for i in range(500)]
        model = ContentionModel(tiny_app, tiny_plan_all_onprem, cluster, requests)
        assert model.peak_utilization_factor() > 1.0

    def test_cloud_never_slows_down(self, tiny_app, default_cluster):
        plan = MigrationPlan.all_cloud(tiny_app.component_names)
        requests = [single_request("/read", i * 5.0) for i in range(500)]
        model = ContentionModel(tiny_app, plan, default_cluster, requests)
        assert model(1, 0.0) == 1.0

    def test_empty_request_list(self, tiny_app, tiny_plan_all_onprem, default_cluster):
        model = ContentionModel(tiny_app, tiny_plan_all_onprem, default_cluster, [])
        assert model(0, 123.0) == 1.0


class TestSimulateWorkload:
    def test_result_views(self, tiny_app):
        scenario = default_scenario(tiny_app, base_rps=15, peak_rps=20, duration_ms=20_000)
        requests = WorkloadGenerator(tiny_app, scenario, seed=4).generate(20_000)
        result = simulate_workload(tiny_app, requests, seed=4)
        assert result.request_count() == len(requests)
        assert set(result.api_latencies()) <= {"/read", "/write"}
        assert result.mean_latency("/read") > 0
        assert result.latency_percentile("/read", 95) >= result.latency_percentile("/read", 50)
        assert 0.0 <= result.failure_rate() <= 1.0
        assert result.cross_dc_invocations() == 0

    def test_unknown_api_raises(self, tiny_app):
        requests = [single_request("/read")]
        result = simulate_workload(tiny_app, requests, seed=1)
        with pytest.raises(KeyError):
            result.mean_latency("/write")

    def test_idle_usage_added(self, tiny_app):
        requests = [single_request("/read")]
        result = simulate_workload(tiny_app, requests, seed=1)
        # ServiceB serves no request but still reports idle CPU and memory.
        assert result.telemetry.component_total("ServiceB", "cpu_millicores") > 0

    def test_operation_counts(self, tiny_app):
        counts = component_operation_counts(tiny_app)
        assert counts["/read"]["Frontend"] == 1
        assert counts["/read"]["Cache"] == 1
        assert counts["/write"]["Database"] == 1
