"""Unit tests for workload profiles, social graph and the request generator."""

import pytest

from repro.workload import (
    ApiMix,
    ApiRequest,
    BehaviorChange,
    ContentSampler,
    DiurnalProfile,
    SocialGraph,
    WorkloadGenerator,
    WorkloadScenario,
    burst_scenario,
    default_scenario,
)


class TestApiMix:
    def test_probabilities_normalized(self):
        mix = ApiMix({"/a": 3.0, "/b": 1.0})
        probs = mix.probabilities()
        assert probs["/a"] == pytest.approx(0.75)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            ApiMix({})
        with pytest.raises(ValueError):
            ApiMix({"/a": -1.0})
        with pytest.raises(ValueError):
            ApiMix({"/a": 0.0})

    def test_reweighted(self):
        mix = ApiMix({"/a": 1.0, "/b": 1.0}).reweighted({"/a": 3.0})
        assert mix.probabilities()["/a"] == pytest.approx(0.75)
        with pytest.raises(KeyError):
            ApiMix({"/a": 1.0}).reweighted({"/z": 1.0})


class TestDiurnalProfile:
    def test_rate_peaks_near_peak_hours(self):
        profile = DiurnalProfile(base_rps=10, peak_rps=50, peak_hours=(12.0,), duration_ms=240_000)
        noon = profile.rate_at(120_000.0)  # halfway through the compressed day = 12:00
        midnight = profile.rate_at(0.0)
        assert noon > midnight
        assert noon == pytest.approx(60.0, rel=0.05)

    def test_two_peaks_present(self):
        profile = DiurnalProfile()
        rates = [profile.rate_at(t) for t in range(0, int(profile.duration_ms), 5_000)]
        assert max(rates) > profile.base_rps * 1.5

    def test_scaled(self):
        profile = DiurnalProfile(base_rps=10, peak_rps=20)
        scaled = profile.scaled(5.0)
        assert scaled.base_rps == 50
        assert scaled.peak_rps == 100
        with pytest.raises(ValueError):
            profile.scaled(-1.0)

    def test_mean_rate_between_base_and_peak(self):
        profile = DiurnalProfile(base_rps=10, peak_rps=40)
        assert 10.0 < profile.mean_rate() < 50.0

    def test_hour_of_wraps(self):
        profile = DiurnalProfile(duration_ms=1_000.0)
        assert profile.hour_of(0.0) == pytest.approx(0.0)
        assert profile.hour_of(1_500.0) == pytest.approx(12.0)


class TestBehaviorChange:
    def test_applies_only_after_start_and_to_listed_apis(self):
        change = BehaviorChange(start_ms=100.0, apis=["/a"], payload_scale=2.0)
        assert not change.applies_to("/a", 50.0)
        assert change.applies_to("/a", 150.0)
        assert not change.applies_to("/b", 150.0)

    def test_empty_api_list_means_all(self):
        change = BehaviorChange(start_ms=0.0, payload_scale=2.0)
        assert change.applies_to("/anything", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BehaviorChange(start_ms=-1.0)
        with pytest.raises(ValueError):
            BehaviorChange(start_ms=0.0, payload_scale=0.0)


class TestWorkloadScenario:
    def test_payload_scale_combines_changes(self):
        mix = ApiMix({"/a": 1.0})
        scenario = WorkloadScenario(
            mix=mix,
            changes=[
                BehaviorChange(start_ms=10.0, apis=["/a"], payload_scale=2.0),
                BehaviorChange(start_ms=20.0, apis=["/a"], payload_scale=3.0),
            ],
        )
        assert scenario.payload_scale_at("/a", 5.0) == 1.0
        assert scenario.payload_scale_at("/a", 15.0) == 2.0
        assert scenario.payload_scale_at("/a", 25.0) == 6.0

    def test_mix_override_applies_after_start(self):
        mix = ApiMix({"/a": 1.0, "/b": 1.0})
        scenario = WorkloadScenario(
            mix=mix,
            changes=[BehaviorChange(start_ms=100.0, mix_override={"/a": 9.0})],
        )
        assert scenario.mix_at(0.0).probabilities()["/a"] == pytest.approx(0.5)
        assert scenario.mix_at(200.0).probabilities()["/a"] == pytest.approx(0.9)


class TestSocialGraph:
    def test_degree_distribution_heavy_tailed(self):
        graph = SocialGraph(users=300, attachment=3, seed=1)
        degrees = sorted((d for _n, d in graph.graph.degree()), reverse=True)
        assert degrees[0] > 4 * graph.mean_followers()

    def test_sample_user_in_range(self):
        graph = SocialGraph(users=100, seed=1)
        for _ in range(20):
            assert 0 <= graph.sample_user() < 100

    def test_followers_consistency(self):
        graph = SocialGraph(users=50, seed=2)
        user = 10
        assert graph.follower_count(user) == len(graph.followers(user))

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            SocialGraph(users=2)

    def test_degree_histogram_sums_to_users(self):
        graph = SocialGraph(users=80, seed=3)
        assert sum(graph.degree_histogram().values()) == 80


class TestContentSampler:
    def test_post_and_media_sizes_positive(self):
        sampler = ContentSampler(seed=1)
        assert sampler.post_size_bytes() > 0
        assert sampler.media_size_bytes() > sampler.post_size_bytes()

    def test_mention_count_higher_when_active(self):
        sampler = ContentSampler(seed=1)
        inactive = sum(sampler.mention_count() for _ in range(200))
        active = sum(sampler.mention_count(active=True) for _ in range(200))
        assert active > inactive


class TestWorkloadGenerator:
    def test_request_fields_valid(self, tiny_app):
        scenario = default_scenario(tiny_app, base_rps=10, peak_rps=10, duration_ms=10_000)
        requests = WorkloadGenerator(tiny_app, scenario, seed=1).generate(10_000)
        assert requests
        for req in requests:
            assert req.api in tiny_app.api_names
            assert 0 <= req.time_ms < 10_000
            assert req.payload_scale > 0

    def test_request_count_tracks_rate(self, tiny_app):
        scenario = default_scenario(tiny_app, base_rps=20, peak_rps=20, duration_ms=30_000)
        generator = WorkloadGenerator(tiny_app, scenario, seed=2)
        requests = generator.generate(30_000)
        expected = generator.expected_request_count(30_000)
        assert len(requests) == pytest.approx(expected, rel=0.3)

    def test_deterministic_given_seed(self, tiny_app):
        scenario = default_scenario(tiny_app, base_rps=10, peak_rps=15, duration_ms=10_000)
        first = WorkloadGenerator(tiny_app, scenario, seed=7).generate(10_000)
        second = WorkloadGenerator(tiny_app, scenario, seed=7).generate(10_000)
        assert [(r.time_ms, r.api) for r in first] == [(r.time_ms, r.api) for r in second]

    def test_rejects_unknown_apis(self, tiny_app):
        scenario = default_scenario(tiny_app)
        scenario.mix = ApiMix({"/ghost": 1.0})
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_app, scenario)

    def test_burst_scenario_scales_rates(self, tiny_app):
        base = default_scenario(tiny_app, base_rps=10, peak_rps=20)
        burst = burst_scenario(tiny_app, burst_factor=5.0, base_rps=10, peak_rps=20)
        assert burst.profile.base_rps == pytest.approx(5 * base.profile.base_rps)

    def test_api_request_validation(self):
        with pytest.raises(ValueError):
            ApiRequest(time_ms=-1.0, api="/a")
        with pytest.raises(ValueError):
            ApiRequest(time_ms=0.0, api="/a", payload_scale=0.0)
