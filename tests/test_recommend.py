"""Tests for the Atlas advisor facade, the search loop and the plan hierarchy."""

import pytest

from repro.cluster import CLOUD, ON_PREM, MigrationPlan
from repro.optimizer import AtlasGA, GAConfig
from repro.optimizer.baselines import (
    AffinityNSGA2Baseline,
    GreedyBusiestBaseline,
    GreedySmallestBaseline,
    IntMABaseline,
    RandomSearchBaseline,
    REMaPBaseline,
)
from repro.quality import MigrationPreferences
from repro.recommend import Atlas, AtlasConfig, PlanHierarchy
from repro.recommend.advisor import Recommendation


SMALL_GA = GAConfig(
    population_size=16,
    offspring_per_generation=8,
    evaluation_budget=220,
    immigrants_per_generation=3,
    local_search_period=3,
    train_iterations=15,
    train_batch_size=2,
    train_pairs=8,
    seed=0,
)


@pytest.fixture(scope="module")
def tiny_atlas(tiny_telemetry):
    """An Atlas advisor learned on the tiny app with a binding on-prem CPU limit."""
    app, result = tiny_telemetry
    atlas = Atlas(app, MigrationPreferences(), config=AtlasConfig(traces_per_api=15, ga=SMALL_GA))
    atlas.learn(result.telemetry)
    peak = atlas.knowledge.estimator.predict_scaled(3.0).peak(
        "cpu_millicores", app.component_names
    )
    atlas.preferences = MigrationPreferences.pin_on_prem(
        ["Database"], onprem_limits={"cpu_millicores": 0.7 * peak}
    )
    return app, atlas


class TestApplicationLearning:
    def test_learn_produces_knowledge(self, tiny_atlas):
        app, atlas = tiny_atlas
        knowledge = atlas.knowledge
        assert set(knowledge.api_profiles) == set(app.api_names)
        assert set(knowledge.component_profiles) == set(app.component_names)
        assert knowledge.footprint.pairs()
        assert knowledge.stateful_components_by_api()["/read"] == ["Database"]

    def test_learn_required_before_recommend(self, tiny_app):
        atlas = Atlas(tiny_app)
        with pytest.raises(RuntimeError):
            atlas.build_evaluator()
        with pytest.raises(RuntimeError):
            atlas.breach_detector()


class TestRecommendation:
    @pytest.fixture(scope="class")
    def recommendation(self, tiny_atlas) -> Recommendation:
        _app, atlas = tiny_atlas
        return atlas.recommend(expected_scale=3.0)

    def test_returns_feasible_pareto_plans(self, tiny_atlas, recommendation):
        app, atlas = tiny_atlas
        assert recommendation.plans
        for quality in recommendation.plans:
            assert quality.feasible
            assert quality.plan["Database"] == ON_PREM  # pinned

    def test_front_is_mutually_non_dominated(self, recommendation):
        plans = recommendation.plans
        for a in plans:
            for b in plans:
                if a is not b:
                    assert not a.dominates(b)

    def test_objective_selectors(self, recommendation):
        perf = recommendation.performance_optimized()
        cost = recommendation.cost_optimized()
        avail = recommendation.availability_optimized()
        assert perf.perf == min(q.perf for q in recommendation.plans)
        assert cost.cost == min(q.cost for q in recommendation.plans)
        assert avail.avail == min(q.avail for q in recommendation.plans)

    def test_latency_preview_covers_all_apis(self, tiny_atlas, recommendation):
        app, _atlas = tiny_atlas
        preview = recommendation.latency_preview(recommendation.performance_optimized().plan)
        assert set(preview) == set(app.api_names)
        for estimate in preview.values():
            assert estimate.estimated_mean_ms > 0

    def test_training_history_recorded(self, recommendation):
        history = recommendation.result.training_history
        assert history is not None
        assert len(history.mean_rewards) == SMALL_GA.train_iterations

    def test_budget_respected(self, recommendation):
        assert recommendation.result.evaluations <= SMALL_GA.evaluation_budget + 60

    def test_hierarchy_renders(self, recommendation):
        hierarchy = recommendation.hierarchy()
        clusters = hierarchy.clusters(min(3, len(recommendation.plans)))
        assert clusters
        assert sum(c.size for c in clusters) == len(recommendation.plans)
        text = hierarchy.to_text()
        assert "perf=" in text

    def test_critical_apis_shift_plan_choice(self, tiny_atlas):
        app, atlas = tiny_atlas
        prefs = atlas.preferences.with_critical_apis(["/write"])
        recommendation = atlas.recommend(expected_scale=3.0, preferences=prefs)
        weights = recommendation.evaluator.api_weights
        assert weights["/write"] == 2.0 and weights["/read"] == 1.0


class TestPlanHierarchy:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PlanHierarchy([])

    def test_single_plan_hierarchy(self, tiny_atlas):
        app, atlas = tiny_atlas
        evaluator = atlas.build_evaluator(expected_scale=1.0)
        quality = evaluator.evaluate(MigrationPlan.all_on_prem(app.component_names))
        hierarchy = PlanHierarchy([quality])
        clusters = hierarchy.clusters(3)
        assert len(clusters) == 1
        assert clusters[0].representative is quality
        assert hierarchy.drill_down(clusters[0]) == []


class TestGACrossoverVariants:
    def test_uniform_variant_runs_without_agent(self, tiny_atlas):
        app, atlas = tiny_atlas
        evaluator = atlas.build_evaluator(expected_scale=3.0)
        config = GAConfig(
            population_size=12, offspring_per_generation=6, evaluation_budget=120,
            train_iterations=5, crossover="uniform", seed=1,
        )
        result = AtlasGA(evaluator, app.component_names, config).run()
        assert result.training_history is None
        assert result.pareto
        assert result.evaluations <= 180

    def test_seed_vectors_are_pinned_and_used(self, tiny_atlas):
        app, atlas = tiny_atlas
        evaluator = atlas.build_evaluator(expected_scale=3.0)
        seeds = [[1] * len(app.component_names)]
        ga = AtlasGA(evaluator, app.component_names, SMALL_GA, seed_vectors=seeds)
        db_index = app.component_names.index("Database")
        assert ga.seed_vectors[0][db_index] == ON_PREM

    def test_reward_matches_equation5(self, tiny_atlas):
        app, atlas = tiny_atlas
        evaluator = atlas.build_evaluator(expected_scale=3.0)
        ga = AtlasGA(evaluator, app.component_names, SMALL_GA)
        all_cloud = [CLOUD] * len(app.component_names)
        all_onprem = [ON_PREM] * len(app.component_names)
        reward = ga.reward(all_onprem, all_cloud, all_cloud)
        assert isinstance(reward, float)
        # The all-on-prem child violates the CPU limit -> negative reward.
        assert reward < 0


class TestBaselines:
    @pytest.fixture(scope="class")
    def context(self, tiny_atlas):
        _app, atlas = tiny_atlas
        evaluator = atlas.build_evaluator(expected_scale=3.0)
        return atlas.baseline_context(evaluator)

    def test_greedy_baselines_reach_feasibility(self, context):
        for cls in (GreedyBusiestBaseline, GreedySmallestBaseline):
            plan = cls(context).recommend()
            assert context.feasible(plan)
            assert plan["Database"] == ON_PREM

    def test_greedy_order_differs(self, context):
        largest = GreedyBusiestBaseline(context).recommend()
        smallest = GreedySmallestBaseline(context).recommend()
        assert largest.offloaded() != smallest.offloaded() or largest == smallest

    def test_affinity_heuristics_minimize_cut(self, context):
        for cls in (REMaPBaseline, IntMABaseline):
            plan = cls(context).recommend()
            assert context.feasible(plan)
            # The heuristic should never leave an obviously better single flip on the table.
            base_cut = context.cross_dc_affinity(plan, cls.message_weight)
            for component in context.movable_components:
                flipped = plan.with_location(component, 1 - plan[component])
                if context.feasible(flipped):
                    assert context.cross_dc_affinity(flipped, cls.message_weight) >= base_cut - 1e-6

    def test_affinity_ga_returns_front(self, context):
        result = AffinityNSGA2Baseline(context, population_size=12, evaluation_budget=150, seed=0).recommend()
        assert result.plans
        assert len(result.plans) == len(result.objectives)
        assert result.evaluations >= 150

    def test_random_search_returns_feasible_pareto(self, context):
        qualities = RandomSearchBaseline(context, evaluation_budget=150, seed=0).recommend()
        assert qualities
        for quality in qualities:
            assert quality.feasible
        for a in qualities:
            for b in qualities:
                if a is not b:
                    assert not a.dominates(b)
