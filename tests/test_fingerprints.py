"""The golden-fingerprint suite: one parametrized home for the fixed-seed contracts.

Two invariants, each enforced in-session (two independently built stacks, never
hardcoded hashes):

1. **Fixed-seed determinism** — every registered golden run (GA with DRL and
   uniform crossover, affinity NSGA-II, random search) fingerprints identically
   across two from-scratch builds of the tiny stack.
2. **``islands=1`` ≡ serial** — the island-model dispatch layer added by the
   parallel-search PR is invisible at W=1: ``AtlasGA(islands=1).run()``,
   ``RandomSearchBaseline(workers=1)`` and ``AffinityNSGA2Baseline(islands=1)``
   are byte-identical to the direct serial loops they wrap.

Future refactors of the evaluator/optimizer stack assert against this suite (and
the shared helpers in ``fingerprints.py``) instead of growing new private copies.
"""

import pytest
from fingerprints import (
    GOLDEN_GA,
    GOLDEN_RUNS,
    build_tiny_evaluator,
    fingerprint_front,
    fingerprint_qualities,
    fingerprint_search_result,
    make_baseline_context,
)

from repro.optimizer import AtlasGA
from repro.optimizer.baselines import AffinityNSGA2Baseline, RandomSearchBaseline


@pytest.fixture(scope="module")
def stack(tiny_telemetry):
    app, result = tiny_telemetry
    return app, result.telemetry


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_golden_run_is_deterministic(name, stack):
    """Two from-scratch stacks replay every golden run to the same fingerprint."""
    app, telemetry = stack
    run = GOLDEN_RUNS[name]
    assert run(app, telemetry) == run(app, telemetry)


class TestIslandsOneIsSerial:
    """The W=1 paths of the parallel layer are byte-identical to the serial loops."""

    def test_atlas_ga_islands_one_matches_serial(self, stack):
        app, telemetry = stack
        dispatched = AtlasGA(
            build_tiny_evaluator(app, telemetry),
            app.component_names,
            config=GOLDEN_GA,
            islands=1,
        ).run()
        serial = AtlasGA(
            build_tiny_evaluator(app, telemetry),
            app.component_names,
            config=GOLDEN_GA,
        )._run_serial()
        assert fingerprint_search_result(dispatched) == fingerprint_search_result(
            serial
        )

    def test_random_search_workers_one_matches_serial(self, stack):
        app, telemetry = stack
        dispatched = RandomSearchBaseline(
            make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            ),
            evaluation_budget=150,
            seed=9,
            workers=1,
        ).recommend()
        serial = RandomSearchBaseline(
            make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            ),
            evaluation_budget=150,
            seed=9,
        )._recommend_serial()
        assert fingerprint_qualities(dispatched) == fingerprint_qualities(serial)

    def test_nsga2_islands_one_matches_serial(self, stack):
        app, telemetry = stack
        dispatched = AffinityNSGA2Baseline(
            make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            ),
            population_size=16,
            evaluation_budget=160,
            seed=5,
            islands=1,
        ).recommend()
        serial = AffinityNSGA2Baseline(
            make_baseline_context(
                app, telemetry, build_tiny_evaluator(app, telemetry)
            ),
            population_size=16,
            evaluation_budget=160,
            seed=5,
        )._recommend_serial()
        assert fingerprint_front(dispatched) == fingerprint_front(serial)

    def test_invalid_worker_counts_rejected(self, stack):
        app, telemetry = stack
        context = make_baseline_context(
            app, telemetry, build_tiny_evaluator(app, telemetry)
        )
        with pytest.raises(ValueError):
            RandomSearchBaseline(context, workers=0)
        with pytest.raises(ValueError):
            AffinityNSGA2Baseline(context, islands=0)
        with pytest.raises(ValueError):
            AtlasGA(context.evaluator, app.component_names, islands=0)
