"""Scenario-axis invariants.

Three laws anchor the scenario refactor:

1. **Single-scenario identity** — evaluating with ``scenarios=None`` is the
   untouched classic path, and robust evaluation over the single *baseline* scenario
   is bitwise identical to it: objectives, feasibility, violation strings, the
   ``evaluations`` counter, and whole fixed-seed GA / NSGA-II / random-search
   trajectories (sha256-fingerprinted).  The pre/post-refactor fingerprints of the
   classic path were additionally verified unchanged during development
   (``ga_all_evaluated = fa6f5ef32f1b…``, ``nsga_plans = ad5b2f79e163…``,
   ``random_search = 576ea18f2526…`` on the tiny stack); in CI the law is enforced
   structurally, platform-independently, by comparing the two in-session runs.
2. **Tensor = independent evaluators** — S-scenario robust evaluation produces, per
   scenario, exactly what S independent single-scenario evaluators produce.
3. **Aggregator contract** — identity on S=1 (bitwise), monotone, bounded by
   [min, max], with CVaR degenerating to the weighted mean (alpha=1) and the worst
   case (alpha→0).
"""

import numpy as np
import pytest
from fingerprints import fingerprint_front, fingerprint_qualities
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MigrationPlan, default_network_model
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.monitoring import DriftDetector, DriftScenarioUpdate
from repro.optimizer import AtlasGA, GAConfig
from repro.optimizer.baselines import (
    AffinityNSGA2Baseline,
    BaselineContext,
    RandomSearchBaseline,
)
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    CVaR,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
    ScenarioSet,
    ScenarioSpec,
    WeightedMean,
    WorstCase,
    scaled_footprint,
)
from repro.workload import ApiMix, DiurnalProfile, WorkloadScenario
from repro.workload.profiles import BehaviorChange

S4 = ScenarioSet(
    (
        ScenarioSpec(name="observed"),
        ScenarioSpec(name="burst", rate_scale=4.0, weight=0.5),
        ScenarioSpec(name="mix", api_rate_factors={"/write": 2.0, "/read": 0.5}),
        ScenarioSpec(name="chatty", payload_factors={"/read": 3.0}),
    )
)


@pytest.fixture(scope="module")
def scenario_stack(tiny_telemetry):
    """Learned models of the tiny app plus an evaluator factory with an estimator."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)
    # Above the base peak (the observed scenario fits on-prem) but far below the
    # burst scenarios' demand, so robust feasibility has something to disagree on.
    limit = estimate.peak("cpu_millicores", app.component_names) * 1.1

    def build_evaluator(preferences=None, with_estimator=True):
        performance = ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=default_network_model(),
            baseline_plan=baseline,
            traces_per_api=20,
        )
        availability = ApiAvailabilityModel(
            {api: p.stateful_components for api, p in profiles.items()}, baseline
        )
        cost = CloudCostModel(
            PricingCatalog(),
            estimate,
            footprint,
            {c.name: c.resources.storage_gb for c in app.components},
            baseline,
            time_compression=288.0,
        )
        return QualityEvaluator(
            performance=performance,
            availability=availability,
            cost=cost,
            preferences=preferences
            or MigrationPreferences.pin_on_prem(
                ["Database"], onprem_limits={"cpu_millicores": limit}
            ),
            estimate=estimate,
            component_order=app.component_names,
            estimator=estimator if with_estimator else None,
        )

    return app, telemetry, build_evaluator


# The canonical fingerprint helper lives in tests/fingerprints.py (one source of
# truth for every fixed-seed suite).
_fingerprint = fingerprint_qualities


vectors_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=1), min_size=6, max_size=6),
    min_size=1,
    max_size=6,
)


class TestSingleScenarioIdentity:
    """Law 1: the default scenario is byte-identical to the classic path."""

    @settings(max_examples=20, deadline=None)
    @given(vectors=vectors_strategy)
    def test_baseline_scenario_matches_classic_evaluation(self, scenario_stack, vectors):
        _app, _telemetry, build_evaluator = scenario_stack
        classic = build_evaluator()
        robust = build_evaluator()
        classic_qualities = classic.evaluate_vectors(vectors)
        robust_qualities = robust.evaluate_vectors(
            vectors, scenarios=ScenarioSet.baseline()
        )
        for a, b in zip(classic_qualities, robust_qualities):
            assert repr(a.objectives()) == repr(b.objectives())
            assert a.feasible == b.feasible
            assert a.violations == b.violations
        assert classic.evaluations == robust.evaluations
        # The breakdown of the single baseline scenario is the classic result itself.
        for a, b in zip(classic_qualities, robust_qualities):
            assert len(b.scenarios) == 1
            assert repr(b.scenarios[0].objectives()) == repr(a.objectives())

    def test_fixed_seed_ga_fingerprint_invariant(self, scenario_stack):
        """The GA trajectory under a bound baseline scenario is the classic one."""
        app, _telemetry, build_evaluator = scenario_stack
        config = GAConfig(
            population_size=16,
            offspring_per_generation=8,
            evaluation_budget=220,
            train_iterations=20,
            train_batch_size=2,
            train_pairs=8,
            seed=11,
        )
        classic = AtlasGA(build_evaluator(), app.component_names, config=config).run()
        bound_evaluator = build_evaluator().bind_scenarios(ScenarioSet.baseline())
        bound = AtlasGA(bound_evaluator, app.component_names, config=config).run()
        assert _fingerprint(classic.all_evaluated) == _fingerprint(bound.all_evaluated)
        assert _fingerprint(classic.pareto) == _fingerprint(bound.pareto)
        assert classic.evaluations == bound.evaluations
        assert bound.pareto[0].scenarios  # robust run carries the breakdown

    def test_fixed_seed_nsga2_and_random_search_fingerprints(self, scenario_stack):
        app, telemetry, build_evaluator = scenario_stack

        def context(evaluator):
            return BaselineContext(
                components=app.component_names,
                evaluator=evaluator,
                traffic_matrix=telemetry.traffic_matrix(),
                message_matrix={},
                busyness={},
            )

        classic_nsga = AffinityNSGA2Baseline(
            context(build_evaluator()), population_size=16, evaluation_budget=160, seed=5
        ).recommend()
        bound_nsga = AffinityNSGA2Baseline(
            context(build_evaluator().bind_scenarios(ScenarioSet.baseline())),
            population_size=16,
            evaluation_budget=160,
            seed=5,
        ).recommend()
        assert fingerprint_front(classic_nsga) == fingerprint_front(bound_nsga)

        classic_random = RandomSearchBaseline(
            context(build_evaluator()), evaluation_budget=150, seed=9
        ).recommend()
        bound_random = RandomSearchBaseline(
            context(build_evaluator().bind_scenarios(ScenarioSet.baseline())),
            evaluation_budget=150,
            seed=9,
        ).recommend()
        assert _fingerprint(classic_random) == _fingerprint(bound_random)


class TestTensorMatchesIndependentEvaluators:
    """Law 2: the S×P tensor equals S independent single-scenario evaluations."""

    def test_per_scenario_entries_match_independent_evaluators(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        rng = np.random.default_rng(17)
        vectors = (rng.random((12, 6)) < 0.5).astype(int).tolist()
        robust = build_evaluator().evaluate_vectors(vectors, scenarios=S4)
        for spec in S4:
            independent = build_evaluator().evaluate_vectors(
                vectors, scenarios=ScenarioSet((spec,))
            )
            for robust_quality, single in zip(robust, independent):
                entry = next(
                    s for s in robust_quality.scenarios if s.scenario == spec.name
                )
                assert repr(entry.objectives()) == repr(
                    single.scenarios[0].objectives()
                )
                assert entry.feasible == single.scenarios[0].feasible
                assert entry.violations == single.scenarios[0].violations

    def test_aggregated_objectives_recompute_from_breakdown(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        aggregator = WeightedMean()
        vectors = [[0, 1, 1, 0, 0, 1], [0, 0, 1, 1, 0, 0]]
        qualities = build_evaluator().evaluate_vectors(
            vectors, scenarios=S4, aggregator=aggregator
        )
        weights = S4.weight_array()
        for quality in qualities:
            perf = np.asarray([[s.perf] for s in quality.scenarios])
            avail = np.asarray([[s.avail] for s in quality.scenarios])
            cost = np.asarray([[s.cost] for s in quality.scenarios])
            assert quality.perf == float(aggregator.combine(perf, weights)[0])
            assert quality.avail == float(aggregator.combine(avail, weights)[0])
            assert quality.cost == float(aggregator.combine(cost, weights)[0])

    def test_robust_feasibility_is_all_scenarios(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        onprem = [[0, 0, 0, 0, 0, 0]]
        quality = evaluator.evaluate_vectors(onprem, scenarios=S4)[0]
        by_name = {s.scenario: s for s in quality.scenarios}
        # All-on-prem fits the observed workload but not the 4x burst.
        assert by_name["observed"].feasible
        assert not by_name["burst"].feasible
        assert not quality.feasible
        assert any(v.startswith("[burst] ") for v in quality.violations)
        # feasible_mask agrees with the per-scenario conjunction.
        mask = evaluator.feasible_mask(onprem, scenarios=S4)
        assert bool(mask[0]) == quality.feasible

    def test_scenario_counters(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        vectors = [[0, 1, 0, 1, 0, 0], [0, 1, 0, 1, 0, 0], [0, 0, 0, 0, 0, 1]]
        evaluator.evaluate_vectors(vectors, scenarios=S4)
        assert evaluator.evaluations == 2  # distinct plans
        assert evaluator.scenario_evaluations == 2 * len(S4)


class TestAggregators:
    """Law 3: aggregator contract (identity, monotonicity, bounds, degeneration)."""

    aggregators = [WorstCase(), WeightedMean(), CVaR(0.4), CVaR(1.0)]

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        ),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=5, max_size=5
        ),
    )
    def test_bounded_and_monotone(self, values, weights):
        tensor = np.asarray(values, dtype=np.float64)
        weight_array = np.asarray(weights[: tensor.shape[0]], dtype=np.float64)
        for aggregator in self.aggregators:
            combined = aggregator.combine(tensor, weight_array)
            assert combined.shape == (tensor.shape[1],)
            lower = tensor.min(axis=0)
            upper = tensor.max(axis=0)
            assert np.all(combined >= lower - 1e-9 * (1 + np.abs(lower)))
            assert np.all(combined <= upper + 1e-9 * (1 + np.abs(upper)))
            # Raising any single entry never lowers the aggregate.
            bumped = tensor.copy()
            bumped[0, 0] += 1.0
            bumped_combined = aggregator.combine(bumped, weight_array)
            assert bumped_combined[0] >= combined[0] - 1e-12 * (1 + abs(combined[0]))

    @settings(max_examples=40, deadline=None)
    @given(
        row=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        weight=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_single_scenario_identity_is_bitwise(self, row, weight):
        tensor = np.asarray([row], dtype=np.float64)
        weights = np.asarray([weight], dtype=np.float64)
        for aggregator in self.aggregators:
            combined = aggregator.combine(tensor, weights)
            assert combined.tobytes() == tensor[0].tobytes()

    def test_cvar_degenerations(self):
        tensor = np.asarray([[1.0, 5.0], [3.0, 1.0], [2.0, 9.0]])
        weights = np.asarray([1.0, 2.0, 1.0])
        mean = WeightedMean().combine(tensor, weights)
        assert np.allclose(CVaR(1.0).combine(tensor, weights), mean)
        worst = WorstCase().combine(tensor, weights)
        assert np.allclose(CVaR(1e-9).combine(tensor, weights), worst)
        # A tighter tail is at least as pessimistic as a wider one.
        assert np.all(
            CVaR(0.25).combine(tensor, weights)
            >= CVaR(0.75).combine(tensor, weights) - 1e-12
        )

    def test_cvar_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CVaR(0.0)
        with pytest.raises(ValueError):
            CVaR(1.5)

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=6,
        ),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=6, max_size=6
        ),
    )
    def test_cvar_boundary_laws_are_bitwise(self, values, weights):
        """CVaR(alpha=1) == WeightedMean and CVaR(alpha→0⁺) == WorstCase, bitwise.

        The boundary laws are exact by construction (the implementation special-
        cases both limits rather than relying on float cancellation), so the
        comparison is on raw bytes, not a tolerance.
        """
        tensor = np.asarray(values, dtype=np.float64)
        weight_array = np.asarray(weights[: tensor.shape[0]], dtype=np.float64)
        mean = WeightedMean().combine(tensor, weight_array)
        assert CVaR(1.0).combine(tensor, weight_array).tobytes() == mean.tobytes()
        worst = WorstCase().combine(tensor, weight_array)
        # Any tail mass at or below the heaviest single scenario's weight share
        # keeps the conditional tail inside the worst row.
        tiny_alpha = min(1e-12, float(weight_array.min() / weight_array.sum()) / 2.0)
        assert (
            CVaR(tiny_alpha).combine(tensor, weight_array).tobytes()
            == worst.tobytes()
        )


class TestScenarioSpecs:
    def test_from_workload_compiles_factors(self):
        mix = ApiMix({"/read": 0.6, "/write": 0.4})
        profile = DiurnalProfile(base_rps=10.0, peak_rps=20.0)
        base = WorkloadScenario(mix=mix, profile=profile, name="base")
        shifted = WorkloadScenario(
            mix=mix,
            profile=profile.scaled(2.0),
            changes=[
                BehaviorChange(
                    start_ms=0.0,
                    apis=["/write"],
                    payload_scale=3.0,
                    mix_override={"/write": 0.8},
                )
            ],
            name="drifted",
        )
        spec = ScenarioSpec.from_workload(shifted, base)
        assert spec.name == "drifted"
        assert spec.rate_scale == pytest.approx(2.0)
        # /write goes from 0.4 to 0.8/1.4 of the mix; /read shrinks accordingly.
        assert spec.api_rate_factors["/write"] == pytest.approx((0.8 / 1.4) / 0.4)
        assert spec.api_rate_factors["/read"] == pytest.approx((0.6 / 1.4) / 0.6)
        assert spec.payload_factors == {"/write": 3.0}
        assert spec.changes_rates and spec.changes_payloads

    def test_from_workload_zeroes_dropped_apis(self):
        """An API the forecast mix drops compiles to rate factor 0, not 1."""
        base = WorkloadScenario(
            mix=ApiMix({"/read": 0.6, "/write": 0.4}),
            profile=DiurnalProfile(),
            name="base",
        )
        narrowed = WorkloadScenario(
            mix=ApiMix({"/read": 1.0}), profile=base.profile, name="only-read"
        )
        spec = ScenarioSpec.from_workload(narrowed, base)
        assert spec.api_rate_factors["/write"] == 0.0
        assert spec.api_rate_factors["/read"] == pytest.approx(1.0 / 0.6)

    def test_scenario_set_validation(self):
        with pytest.raises(ValueError):
            ScenarioSet(())
        with pytest.raises(ValueError):
            ScenarioSet((ScenarioSpec(name="a"), ScenarioSpec(name="a")))
        assert ScenarioSet.baseline()[0].is_baseline
        assert ScenarioSet.with_bursts([2.0, 5.0]).names == [
            "observed",
            "burst-x2",
            "burst-x5",
        ]

    def test_scaled_footprint_identity_and_scaling(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        footprint = evaluator.cost.footprint
        assert scaled_footprint(footprint, ScenarioSpec(name="same")) is footprint
        scaled = scaled_footprint(
            footprint, ScenarioSpec(name="big", payload_factors={"/read": 2.0})
        )
        for (src, dst), edge in footprint.edges_of("/read").items():
            assert scaled.request_bytes("/read", src, dst) == edge.request_bytes * 2.0
        for (src, dst), edge in footprint.edges_of("/write").items():
            assert scaled.request_bytes("/write", src, dst) == edge.request_bytes

    def test_rate_changing_scenario_requires_estimator(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator(with_estimator=False)
        with pytest.raises(ValueError, match="estimator"):
            evaluator.evaluate_vectors(
                [[0, 1, 0, 0, 0, 0]],
                scenarios=ScenarioSpec(name="burst", rate_scale=2.0),
            )


class TestInvalidation:
    def test_invalidate_for_scenario_recomputes_identically(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        vectors = [[0, 1, 1, 0, 0, 1]]
        before = evaluator.evaluate_vectors(vectors, scenarios=S4)[0]
        evaluator.invalidate_for_scenario("chatty")
        assert all(
            all(spec_key[0] != "chatty" for spec_key in cache_key[0])
            for cache_key in evaluator._robust_caches
        )
        after = evaluator.evaluate_vectors(vectors, scenarios=S4)[0]
        assert repr(after.objectives()) == repr(before.objectives())
        evaluator.invalidate_for_scenario()
        assert evaluator.cache_size() == len(evaluator._cache)

    def test_invalidate_reaches_scenario_views(self, scenario_stack):
        """Invalidating the base model clears every live view's own Δ caches too."""
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        evaluator.evaluate_vectors([[0, 1, 1, 0, 0, 1]], scenarios=S4)
        chatty = next(spec for spec in S4 if spec.name == "chatty")
        view = evaluator._scenario_context(chatty).performance
        assert view is not evaluator.performance
        assert "/read" in view._delta_tables
        evaluator.performance.invalidate_for_scenario(["/read"])
        assert "/read" not in view._delta_tables
        assert all(key[0] != "/read" for key in view._delays_by_projection)

    def test_invalidate_apis_clears_performance_caches(self, scenario_stack):
        _app, _telemetry, build_evaluator = scenario_stack
        evaluator = build_evaluator()
        vectors = [[0, 1, 1, 0, 0, 1], [0, 0, 1, 0, 0, 0]]
        before = evaluator.evaluate_vectors(vectors)
        performance = evaluator.performance
        assert performance._row_means
        evaluator.invalidate_for_scenario(apis=["/read"])
        assert "/read" not in performance._row_means
        assert "/read" not in performance._compiled
        assert all(key[0] != "/read" for key in performance._by_signature)
        after = evaluator.evaluate_vectors(vectors)
        assert [repr(q.objectives()) for q in after] == [
            repr(q.objectives()) for q in before
        ]

    def test_drift_detector_emits_refreshed_scenario(self):
        rng = np.random.default_rng(2)
        real = {"/read": (50 + rng.normal(0, 2, 200)).tolist()}
        approx = {"/read": (50 + rng.normal(0, 2.5, 200)).tolist()}
        detector = DriftDetector(approx, real, threshold_factor=3.0)
        base = WorkloadScenario(
            mix=ApiMix({"/read": 1.0}), profile=DiurnalProfile(), name="observed"
        )
        # No drift: recent matches the post-migration ground truth.
        calm = detector.check_all({"/read": real["/read"][:100]}, scenario=base)
        assert isinstance(calm, DriftScenarioUpdate)
        assert calm.scenario is None and not calm.drift_detected
        # Strong drift: a big latency shift emits a refreshed scenario whose change
        # carries the observed inflation as a payload scale.
        drifted = detector.check_all(
            {"/read": (150 + rng.normal(0, 2, 200)).tolist()}, scenario=base
        )
        assert drifted.drift_detected and drifted.drifted_apis == ["/read"]
        refreshed = drifted.scenario
        assert refreshed is not None and refreshed.name == "observed-drift"
        change = refreshed.changes[-1]
        assert change.apis == ["/read"]
        assert change.payload_scale == pytest.approx(3.0, rel=0.05)
        # Legacy form unchanged: no scenario argument -> plain report mapping.
        legacy = detector.check_all({"/read": real["/read"][:100]})
        assert isinstance(legacy, dict)


class TestBoundEvaluatorDoors:
    """The optimizers' entry points all route through the bound scenario set."""

    def test_bound_evaluate_and_masks_agree(self, scenario_stack):
        app, _telemetry, build_evaluator = scenario_stack
        bound = build_evaluator().bind_scenarios(S4)
        explicit = build_evaluator()
        vectors = [[0, 1, 0, 1, 0, 0], [0, 0, 0, 0, 0, 0]]
        via_bound = bound.evaluate_vectors(vectors)
        via_explicit = explicit.evaluate_vectors(vectors, scenarios=S4)
        assert [repr(q.objectives()) for q in via_bound] == [
            repr(q.objectives()) for q in via_explicit
        ]
        plans = [
            MigrationPlan.from_vector(app.component_names, v) for v in vectors
        ]
        assert [q.feasible for q in bound.evaluate_batch(plans)] == [
            q.feasible for q in via_explicit
        ]
        assert bound.is_feasible(plans[0]) == via_explicit[0].feasible
        assert list(bound.feasible_mask(vectors)) == [
            q.feasible for q in via_explicit
        ]
        np.testing.assert_array_equal(
            bound.qcost_vectors(vectors),
            np.asarray([q.cost for q in via_explicit]),
        )
        assert bound.cache_size() == 2
        assert all(q.scenarios for q in bound.evaluated_qualities())
        bound.unbind_scenarios()
        assert bound.cache_size() == 0  # classic cache is untouched
