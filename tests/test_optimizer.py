"""Tests for the plan search: Pareto tools, NSGA-II machinery, DRL agent, Atlas GA, baselines."""

import numpy as np
import pytest

from repro.cluster import CLOUD, ON_PREM, MigrationPlan
from repro.optimizer import (
    AdamOptimizer,
    CrossoverAgent,
    GAConfig,
    MLP,
    bitflip_mutation,
    crowding_distance,
    dominates,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front,
    rank_population,
    survival_selection,
    tournament_pairs,
    uniform_crossover,
)
from repro.optimizer.atlas_ga import affinity_seed_vectors, penalized_objectives
from repro.quality.evaluator import PlanQuality


class TestParetoTools:
    def test_dominates_basic(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_dominates_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    def test_pareto_front_filters_dominated(self):
        points = [(1, 5), (2, 2), (5, 1), (3, 3), (6, 6)]
        front = pareto_front(points, key=lambda p: p)
        assert set(front) == {(1, 5), (2, 2), (5, 1)}

    def test_pareto_front_deduplicates(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front(points, key=lambda p: p) == [(1, 1)]

    def test_non_dominated_sort_layers(self):
        objectives = [(1, 1), (2, 2), (3, 3), (1, 3), (3, 1)]
        fronts = non_dominated_sort(objectives)
        assert 0 in fronts[0]
        assert set(fronts[0]) == {0}
        assert all(i in fronts[1] for i in (1, 3, 4))

    def test_crowding_distance_boundaries_infinite(self):
        objectives = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]
        distances = crowding_distance(objectives)
        assert distances[0] == float("inf")
        assert distances[3] == float("inf")
        assert all(d > 0 for d in distances)

    def test_crowding_distance_small_fronts(self):
        assert crowding_distance([(1, 1)]) == [float("inf")]
        assert crowding_distance([]) == []

    def test_hypervolume_monotone_in_front_quality(self):
        reference = (10.0, 10.0)
        weak = [(8.0, 8.0)]
        strong = [(2.0, 8.0), (8.0, 2.0), (4.0, 4.0)]
        assert hypervolume_2d(strong, reference) > hypervolume_2d(weak, reference)
        assert hypervolume_2d([], reference) == 0.0


class TestNSGA2Machinery:
    def test_rank_population_assigns_ranks(self):
        objectives = [(1, 1), (2, 2), (1, 3), (3, 1)]
        ranked = rank_population(objectives)
        by_index = {r.index: r for r in ranked}
        assert by_index[0].rank == 0
        assert by_index[1].rank == 1

    def test_crowded_comparison(self):
        objectives = [(1, 1), (2, 2)]
        ranked = rank_population(objectives)
        better = next(r for r in ranked if r.index == 0)
        worse = next(r for r in ranked if r.index == 1)
        assert better.beats(worse)

    def test_tournament_pairs_prefer_distinct_parents(self):
        rng = np.random.default_rng(0)
        ranked = rank_population([(1, 1), (2, 2), (3, 3), (4, 4)])
        pairs = tournament_pairs(ranked, 10, rng)
        assert len(pairs) == 10
        assert any(a != b for a, b in pairs)

    def test_survival_selection_is_elitist(self):
        objectives = [(1, 1), (5, 5), (2, 2), (4, 4), (3, 3)]
        survivors = survival_selection(objectives, 2)
        assert 0 in survivors and len(survivors) == 2

    def test_survival_selection_uses_crowding_within_front(self):
        # One big front; selection should keep the extremes.
        objectives = [(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]
        survivors = survival_selection(objectives, 3)
        assert 0 in survivors and 4 in survivors

    def test_uniform_crossover_genes_come_from_parents(self):
        rng = np.random.default_rng(1)
        child = uniform_crossover([0] * 10, [1] * 10, rng)
        assert all(g in (0, 1) for g in child)
        assert len(child) == 10

    def test_uniform_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            uniform_crossover([0], [0, 1], np.random.default_rng(0))

    def test_bitflip_mutation_rate_extremes(self):
        rng = np.random.default_rng(2)
        assert bitflip_mutation([0, 1, 0], rng, rate=0.0) == [0, 1, 0]
        flipped = bitflip_mutation([0, 0, 0, 0], rng, rate=1.0)
        assert flipped == [1, 1, 1, 1]
        with pytest.raises(ValueError):
            bitflip_mutation([0], rng, rate=2.0)


class TestMLPAndAdam:
    def test_forward_shapes(self):
        net = MLP(4, [8], 3, head="sigmoid", seed=0)
        out = net(np.zeros(4))
        assert out.shape == (1, 3)
        assert np.all((out >= 0) & (out <= 1))

    def test_linear_head_unbounded(self):
        net = MLP(2, [4], 1, head="linear", seed=0)
        out = net(np.array([10.0, -10.0]))
        assert out.shape == (1, 1)

    def test_invalid_head_rejected(self):
        with pytest.raises(ValueError):
            MLP(2, [4], 1, head="tanh")

    def test_training_reduces_regression_loss(self):
        rng = np.random.default_rng(0)
        net = MLP(3, [16, 16], 1, head="linear", seed=1)
        opt = AdamOptimizer(learning_rate=1e-2)
        inputs = rng.normal(size=(64, 3))
        targets = (inputs.sum(axis=1, keepdims=True)) * 0.5

        def loss():
            pred, _ = net.forward(inputs)
            return float(np.mean((pred - targets) ** 2))

        before = loss()
        for _ in range(200):
            pred, cache = net.forward(inputs, keep_cache=True)
            grad = 2.0 * (pred - targets) / len(inputs)
            grads = net.backward(cache, grad)
            net.apply_gradients(grads, opt)
        assert loss() < before * 0.2


class TestCrossoverAgent:
    def test_child_respects_pins(self):
        agent = CrossoverAgent(n_components=6, hidden_dims=(16,), pinned={0: ON_PREM, 5: CLOUD}, seed=0)
        rng = np.random.default_rng(0)
        child = agent.crossover([0] * 6, [1] * 6, rng)
        assert child[0] == ON_PREM and child[5] == CLOUD
        assert len(child) == 6

    def test_probabilities_shape_and_range(self):
        agent = CrossoverAgent(n_components=5, hidden_dims=(8,), seed=1)
        probs = agent.child_probabilities([0] * 5, [1] * 5)
        assert probs.shape == (5,)
        assert np.all((probs > 0) & (probs < 1))

    def test_parent_length_validation(self):
        agent = CrossoverAgent(n_components=4, hidden_dims=(8,), seed=1)
        with pytest.raises(ValueError):
            agent.state([0, 1], [0, 1, 0, 1])

    def test_training_learns_simple_reward(self):
        """Reward favours offloading everything: the agent should learn to emit ones."""
        agent = CrossoverAgent(n_components=6, hidden_dims=(16, 16), learning_rate=5e-3, seed=2)
        pairs = [([0] * 6, [1] * 6), ([1] * 6, [0] * 6)]

        def reward(child, _pa, _pb):
            return float(sum(child)) - 3.0

        history = agent.train(pairs, reward, iterations=150, batch_size=4)
        assert len(history.mean_rewards) == 150
        early = np.mean(history.mean_rewards[:20])
        late = np.mean(history.mean_rewards[-20:])
        assert late > early
        probs = agent.child_probabilities([0] * 6, [1] * 6)
        assert probs.mean() > 0.6

    def test_smoothed_rewards_length(self):
        agent = CrossoverAgent(n_components=3, hidden_dims=(8,), seed=3)
        history = agent.train([([0, 0, 0], [1, 1, 1])], lambda c, a, b: 1.0, iterations=10, batch_size=1)
        assert len(history.smoothed_rewards()) == 10


def _quality(vector, perf, avail, cost, feasible=True):
    plan = MigrationPlan.from_vector([f"c{i}" for i in range(len(vector))], vector)
    return PlanQuality(plan=plan, perf=perf, avail=avail, cost=cost, feasible=feasible,
                       violations=() if feasible else ("v",))


class TestAtlasGAHelpers:
    def test_penalized_objectives(self):
        ok = _quality([0, 1], 1.0, 2.0, 3.0, feasible=True)
        bad = _quality([1, 0], 1.0, 2.0, 3.0, feasible=False)
        assert penalized_objectives(ok) == (1.0, 2.0, 3.0)
        assert all(v > 1e5 for v in penalized_objectives(bad))

    def test_affinity_seed_vectors_reach_feasibility(self):
        components = ["A", "B", "C", "D"]
        traffic = {("A", "B"): 1000.0, ("B", "C"): 10.0, ("C", "D"): 500.0}

        def feasible(vector):
            return sum(1 for location in vector if location != ON_PREM) >= 2

        seeds = affinity_seed_vectors(
            components, pinned={"A": ON_PREM}, pair_traffic=traffic,
            is_feasible=feasible, rng=np.random.default_rng(0), count=3,
        )
        assert len(seeds) == 3
        for seed in seeds:
            assert seed[0] == ON_PREM  # pin respected
            assert sum(seed) >= 2  # feasible

    def test_affinity_seeds_prefer_cutting_light_edges(self):
        components = ["A", "B", "C"]
        traffic = {("A", "B"): 10_000.0, ("B", "C"): 1.0}

        def feasible(vector):
            return sum(1 for location in vector if location != ON_PREM) >= 1

        seeds = affinity_seed_vectors(
            components, pinned={}, pair_traffic=traffic,
            is_feasible=feasible, rng=np.random.default_rng(0), count=1, noise=0.0,
        )
        # Offloading C cuts only the 1-byte edge; A/B stay together.
        assert seeds[0] == [ON_PREM, ON_PREM, CLOUD]


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=2)
        with pytest.raises(ValueError):
            GAConfig(crossover="magic")
        with pytest.raises(ValueError):
            GAConfig(population_size=100, evaluation_budget=50)
