"""Tests for the analysis layer: reporting helpers and the evaluation testbed."""

import pytest

from repro.analysis import (
    PINNED_COMPONENTS,
    build_testbed,
    format_mapping,
    format_series,
    format_table,
)
from repro.cluster import ON_PREM


class TestReporting:
    def test_format_table_alignment_and_values(self):
        rows = [
            {"method": "atlas", "cost": 1.234, "plans": 9},
            {"method": "remap", "cost": 10.5, "plans": 1},
        ]
        text = format_table(rows, title="Comparison")
        assert "Comparison" in text
        assert "atlas" in text and "remap" in text
        assert "1.23" in text and "10.50" in text
        assert len({len(line) for line in text.splitlines()[1:]}) == 1  # aligned

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_series_downsamples(self):
        text = format_series({"reward": list(range(100))}, max_points=10)
        assert text.count(",") <= 10

    def test_format_mapping(self):
        text = format_mapping({"key": 3.14159}, precision=2, title="T")
        assert "T" in text and "3.14" in text


@pytest.fixture(scope="module")
def small_testbed():
    return build_testbed(
        duration_ms=45_000.0,
        base_rps=10.0,
        peak_rps=15.0,
        evaluation_budget=250,
        population_size=16,
        train_iterations=10,
        traces_per_api=8,
    )


class TestTestbed:
    def test_pinned_components_stay_on_prem(self, small_testbed):
        for component in PINNED_COMPONENTS["social-network"]:
            assert small_testbed.preferences.pinned_placement[component] == ON_PREM

    def test_onprem_limit_is_binding_under_burst(self, small_testbed):
        estimate = small_testbed.atlas.knowledge.estimator.predict_scaled(
            small_testbed.expected_scale
        )
        peak = estimate.peak("cpu_millicores", small_testbed.application.component_names)
        assert peak > small_testbed.onprem_cpu_limit

    def test_all_on_prem_plan_is_infeasible_for_burst(self, small_testbed):
        evaluator = small_testbed.evaluator()
        assert not evaluator.is_feasible(small_testbed.baseline_plan)

    def test_no_stress_latencies_positive(self, small_testbed):
        latencies = small_testbed.no_stress_latencies()
        assert set(latencies) == set(small_testbed.application.api_names)
        assert all(v > 0 for v in latencies.values())

    def test_scaled_requests_cached_and_larger(self, small_testbed):
        burst = small_testbed.scaled_requests()
        again = small_testbed.scaled_requests()
        assert burst is again
        assert len(burst) > len(small_testbed.requests) * 2

    def test_measure_plan_returns_simulation(self, small_testbed):
        result = small_testbed.measure_plan(small_testbed.baseline_plan, scale=1.0)
        assert result.request_count() > 0
        factor = small_testbed.measured_impact_factor(result)
        # At the learning-time load the all-on-prem placement is at most mildly contended
        # (the physical capacity is sized for the owner's burst-time limit).
        assert 0.8 <= factor <= 3.0

    def test_hotel_testbed_builds(self):
        testbed = build_testbed(
            application="hotel-reservation",
            duration_ms=30_000.0,
            base_rps=8.0,
            peak_rps=12.0,
            evaluation_budget=200,
            population_size=12,
            train_iterations=5,
            traces_per_api=5,
        )
        assert testbed.application.name == "hotel-reservation"
        assert testbed.preferences.pinned_placement

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            build_testbed(application="bank")
