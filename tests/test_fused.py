"""Fused cross-API replay tier: equivalence, tolerance and anytime-search laws.

The fused program concatenates every API's compiled trace set into one
level-scheduled replay; its float64 path must be **bitwise** identical to the
per-API :meth:`CompiledTraceSet.replay_batch` results (that is what keeps the
``fused`` engine interchangeable with ``compiled`` mid-search).  The float32 fast
path is tolerance-contracted instead — objective values within ``rtol=1e-5`` of
the float64 oracle with identical feasibility masks and Pareto ranks — and the
optional numba backend must stay import-guarded in numba-free environments.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.atlas_ga import AtlasGA, GAConfig
from repro.quality import HAS_NUMBA, CompiledTraceSet, FusedProgram
from test_compiled import _random_plans, random_delays, random_trace, tiny_models  # noqa: F401


def _random_programs(seed):
    """Random per-API compiled sets + their fused program + random fused Δ rows."""
    rng = np.random.default_rng(seed)
    compiled_by_api = {}
    for k in range(int(rng.integers(2, 5))):
        api = f"/api{k}"
        traces = [
            random_trace(rng, f"{api}-t{i}") for i in range(int(rng.integers(1, 4)))
        ]
        edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
        compiled_by_api[api] = CompiledTraceSet(traces, edges)
    order = sorted(compiled_by_api)
    program = FusedProgram(compiled_by_api, order)
    n_plans = int(rng.integers(1, 6))
    segments = []
    for api in order:
        compiled = compiled_by_api[api]
        maps = [
            random_delays(rng, list(compiled.edge_index)) for _ in range(n_plans)
        ]
        segments.append(compiled.delta_rows(maps))
    return compiled_by_api, order, program, np.hstack(segments)


class TestFusedProgramEquivalence:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_fused_replay_bitwise_equals_per_api_replay(self, seed):
        """Property: on random topologies and random Δ rows, every API's segment of
        the fused float64 replay equals its own ``replay_batch`` bit for bit."""
        compiled_by_api, order, program, rows = _random_programs(seed)
        fused = program.replay(rows)
        assert fused.shape == (rows.shape[0], program.total_traces)
        for api in order:
            compiled = compiled_by_api[api]
            e0, e1 = program.edge_segment(api)
            t0, t1 = program.trace_segment(api)
            alone = compiled.replay_batch(rows[:, e0:e1])
            assert np.array_equal(fused[:, t0:t1], alone)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_replay32_within_tolerance_of_float64(self, seed):
        """The float32 fast path stays within its advertised rtol of the oracle."""
        _compiled, _order, program, rows = _random_programs(seed)
        oracle = program.replay(rows)
        fast = program.replay32(rows).astype(np.float64)
        assert np.allclose(fast, oracle, rtol=1e-5, atol=1e-6)

    def test_rejects_wrong_row_width_and_empty_api_set(self):
        _compiled, _order, program, rows = _random_programs(3)
        with pytest.raises(ValueError):
            program.replay(np.zeros((2, program.total_edges + 1)))
        with pytest.raises(ValueError):
            FusedProgram({}, [])


class TestJitGuard:
    def test_replay_jit_raises_without_numba(self):
        """The optional backend must fail loudly — not crash on import — when the
        numba dependency is absent (the tier-1 environment)."""
        if HAS_NUMBA:
            pytest.skip("numba installed; the guard only binds without it")
        _compiled, _order, program, rows = _random_programs(5)
        with pytest.raises(RuntimeError, match="numba"):
            program.replay_jit(rows)

    def test_replay_jit_bitwise_equals_replay(self):
        """With numba installed (the optional-deps CI job), the JIT kernel is
        bitwise identical to the numpy float64 replay."""
        if not HAS_NUMBA:
            pytest.skip("requires the optional numba dependency")
        for seed in (1, 2, 3):
            _compiled, _order, program, rows = _random_programs(seed)
            assert np.array_equal(program.replay_jit(rows), program.replay(rows))


class TestFusedEngines:
    def test_fused_qperf_batch_bitwise_equals_compiled(self, tiny_models):
        app, performance, _evaluator = tiny_models
        compiled_model = performance("compiled")
        fused_model = performance("fused")
        matrix = np.asarray(
            [plan.to_vector() for plan in _random_plans(app, 25, seed=13)]
        )
        compiled_scores = compiled_model.qperf_batch(matrix, app.component_names)
        fused_scores = fused_model.qperf_batch(matrix, app.component_names)
        assert np.array_equal(fused_scores, compiled_scores)

    def test_fused_evaluate_batch_identical_to_compiled(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plans = _random_plans(app, 20, seed=29)
        compiled_q = evaluator("compiled").evaluate_batch(plans)
        fused_q = evaluator("fused").evaluate_batch(plans)
        assert [q.objectives() for q in fused_q] == [
            q.objectives() for q in compiled_q
        ]
        assert [q.feasible for q in fused_q] == [q.feasible for q in compiled_q]
        assert [q.violations for q in fused_q] == [q.violations for q in compiled_q]

    def test_fused32_tolerance_feasibility_and_rank_agreement(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plans = _random_plans(app, 40, seed=31)
        oracle_q = evaluator("compiled").evaluate_batch(plans)
        fast_q = evaluator("fused32").evaluate_batch(plans)
        oracle = np.asarray([q.objectives() for q in oracle_q], dtype=np.float64)
        fast = np.asarray([q.objectives() for q in fast_q], dtype=np.float64)
        assert np.allclose(fast, oracle, rtol=1e-5)
        assert [q.feasible for q in fast_q] == [q.feasible for q in oracle_q]

        def ranks(points):
            def dominates(a, b):
                return all(x <= y for x, y in zip(a, b)) and any(
                    x < y for x, y in zip(a, b)
                )

            remaining = set(range(len(points)))
            out = [0] * len(points)
            rank = 0
            while remaining:
                front = [
                    i
                    for i in remaining
                    if not any(
                        dominates(points[j], points[i]) for j in remaining if j != i
                    )
                ]
                for i in front:
                    out[i] = rank
                remaining -= set(front)
                rank += 1
            return out

        feasible = [i for i, q in enumerate(oracle_q) if q.feasible]
        assert ranks([tuple(oracle[i]) for i in feasible]) == ranks(
            [tuple(fast[i]) for i in feasible]
        )

    def test_fused_jit_engine_guarded_without_numba(self, tiny_models):
        app, performance, _evaluator = tiny_models
        if not HAS_NUMBA:
            # The guard fires at construction — a fused-jit model can never exist
            # in a numba-free environment, so no search can die mid-run on it.
            with pytest.raises(RuntimeError, match="numba"):
                performance("fused-jit")
            return
        matrix = np.asarray([plan.to_vector() for plan in _random_plans(app, 3)])
        compiled_scores = performance("compiled").qperf_batch(
            matrix, app.component_names
        )
        assert np.array_equal(
            performance("fused-jit").qperf_batch(matrix, app.component_names),
            compiled_scores,
        )

    def test_fixed_seed_ga_front_matches_compiled_engine(self, tiny_models):
        """The fused engine slots under a fixed-seed search without changing its
        trajectory — same front, same evaluation and generation counts."""
        app, _performance, evaluator = tiny_models
        config = GAConfig(
            population_size=12,
            offspring_per_generation=6,
            evaluation_budget=150,
            max_generations=25,
            train_iterations=8,
            train_batch_size=2,
            train_pairs=8,
            seed=4,
        )
        results = {
            engine: AtlasGA(
                evaluator(engine), app.component_names, config=config
            ).run()
            for engine in ("compiled", "fused")
        }
        assert [q.objectives() for q in results["fused"].pareto] == [
            q.objectives() for q in results["compiled"].pareto
        ]
        assert results["fused"].evaluations == results["compiled"].evaluations
        assert results["fused"].generations == results["compiled"].generations


class TestAnytimeSearch:
    CONFIG = GAConfig(
        population_size=12,
        offspring_per_generation=6,
        evaluation_budget=400,
        max_generations=40,
        train_iterations=8,
        train_batch_size=2,
        train_pairs=8,
        seed=4,
    )

    def _run(self, tiny_models, **overrides):
        app, _performance, evaluator = tiny_models
        config = dataclasses.replace(self.CONFIG, **overrides)
        return AtlasGA(evaluator("compiled"), app.component_names, config=config).run()

    def test_patience_zero_is_the_historical_run(self, tiny_models):
        """``patience=0`` (the default) must stay byte-identical to a run where the
        stall counter never fires — same front, counts, and no early exit."""
        baseline = self._run(tiny_models)
        tolerant = self._run(tiny_models, patience=10**6)
        assert baseline.early_stopped is False
        assert [q.objectives() for q in tolerant.pareto] == [
            q.objectives() for q in baseline.pareto
        ]
        assert tolerant.evaluations == baseline.evaluations
        assert tolerant.generations == baseline.generations

    def test_patience_early_exit_is_deterministic(self, tiny_models):
        """A fixed-seed anytime run converges at the same generation every time,
        cutting the patience-less trajectory short (never extending it)."""
        first = self._run(tiny_models, patience=2)
        second = self._run(tiny_models, patience=2)
        assert first.early_stopped and second.early_stopped
        assert first.generations == second.generations
        assert first.evaluations == second.evaluations
        assert [q.objectives() for q in first.pareto] == [
            q.objectives() for q in second.pareto
        ]
        full = self._run(tiny_models)
        assert first.generations <= full.generations
        assert first.evaluations <= full.evaluations

    def test_patience_rejects_negative(self):
        with pytest.raises(ValueError):
            dataclasses.replace(self.CONFIG, patience=-1)
