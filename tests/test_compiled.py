"""Compiled trace-replay engine: equivalence with the reference oracle and cache laws.

The compiled engine must be *bitwise* identical to the recursive ``DelayInjector``
(that is what keeps fixed-seed GA trajectories engine-independent), and the projection
caches must never change results — only skip work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MigrationPlan, default_network_model
from repro.learning import ApiProfiler, FootprintLearner, ResourceEstimator
from repro.quality import (
    ApiAvailabilityModel,
    ApiPerformanceModel,
    CloudCostModel,
    CompiledTraceSet,
    DelayInjector,
    MigrationPreferences,
    PricingCatalog,
    QualityEvaluator,
)
from repro.telemetry import Span, Trace


def random_trace(rng: np.random.Generator, trace_id: str) -> Trace:
    """A random span tree with sequential, parallel and background patterns.

    Timings are rounded to one decimal so sibling ties, zero durations and exact
    overlaps (the classification edge cases) actually occur.
    """
    n_spans = int(rng.integers(1, 16))
    components = [f"C{i}" for i in range(int(rng.integers(2, 7)))]
    spans = [
        Span(
            trace_id,
            "s0",
            None,
            str(rng.choice(components)),
            "op",
            float(np.round(rng.uniform(0, 10), 1)),
            float(np.round(rng.uniform(5, 60), 1)),
        )
    ]
    for i in range(1, n_spans):
        parent = spans[int(rng.integers(0, len(spans)))]
        start = parent.start_ms + float(np.round(rng.uniform(0, parent.duration_ms), 1))
        # Durations may exceed the parent's end: that is the background pattern.
        duration = float(np.round(rng.uniform(0, parent.duration_ms * 1.5), 1))
        spans.append(
            Span(trace_id, f"s{i}", parent.span_id, str(rng.choice(components)), "op", start, duration)
        )
    return Trace(trace_id, "/api", spans)


def random_delays(rng: np.random.Generator, edges) -> dict:
    """A random delay map including zero, negative (must be clipped) and large Δ."""
    return {edge: float(rng.uniform(-5, 80)) for edge in edges if rng.random() < 0.6}


class TestCompiledEquivalence:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=80, deadline=None)
    def test_matches_delay_injector_on_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        traces = [random_trace(rng, f"t{k}") for k in range(int(rng.integers(1, 5)))]
        edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
        compiled = CompiledTraceSet(traces, edges)
        for _ in range(3):
            delays = random_delays(rng, edges)
            reference = [DelayInjector(trace).injected_latency_ms(delays) for trace in traces]
            replayed = compiled.latencies(delays)
            assert len(replayed) == len(reference)
            for got, want in zip(replayed, reference):
                assert got == pytest.approx(want, abs=1e-9)
                assert got == want  # bitwise: fixed-seed searches stay engine-independent

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_replay_batch_rows_match_single_plan_replays(self, seed):
        rng = np.random.default_rng(seed)
        traces = [random_trace(rng, f"t{k}") for k in range(int(rng.integers(1, 4)))]
        edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
        compiled = CompiledTraceSet(traces, edges)
        delay_maps = [random_delays(rng, edges) for _ in range(5)]
        rows = np.vstack([compiled.delta_row(d) for d in delay_maps])
        matrix = compiled.replay_batch(rows)
        assert matrix.shape == (5, len(traces))
        for row, delays in zip(matrix, delay_maps):
            assert [float(v) for v in row] == compiled.latencies(delays)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_delta_rows_bitwise_equals_per_plan_delta_row(self, seed):
        """The vectorized Δ-matrix constructor is the per-plan ``delta_row``
        stacked — bitwise, including the zero-clipping and unknown-edge drops."""
        rng = np.random.default_rng(seed)
        traces = [random_trace(rng, f"t{k}") for k in range(int(rng.integers(1, 4)))]
        edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
        compiled = CompiledTraceSet(traces, edges)
        delay_maps = [random_delays(rng, edges) for _ in range(int(rng.integers(0, 7)))]
        # Unknown edges must be dropped identically on both paths.
        for delays in delay_maps:
            delays[("X-not-a-component", "Y")] = 12.5
        stacked = np.asarray([compiled.delta_row(d) for d in delay_maps]).reshape(
            len(delay_maps), compiled.n_edges
        )
        assert np.array_equal(compiled.delta_rows(delay_maps), stacked)

    def test_no_delay_replay_is_identity(self):
        rng = np.random.default_rng(7)
        traces = [random_trace(rng, f"t{k}") for k in range(3)]
        edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
        compiled = CompiledTraceSet(traces, edges)
        for got, trace in zip(compiled.latencies({}), traces):
            assert got == pytest.approx(trace.latency_ms, abs=1e-9)

    def test_rejects_empty_trace_set_and_bad_rows(self):
        with pytest.raises(ValueError):
            CompiledTraceSet([], [])
        rng = np.random.default_rng(1)
        trace = random_trace(rng, "t")
        compiled = CompiledTraceSet([trace], sorted(set(trace.invocation_edges())))
        with pytest.raises(ValueError):
            compiled.replay_batch(np.zeros((1, compiled.n_edges + 3)))


@pytest.fixture(scope="module")
def tiny_models(tiny_telemetry):
    """Performance models (both engines) + full evaluators over the tiny app."""
    app, result = tiny_telemetry
    telemetry = result.telemetry
    baseline = MigrationPlan.all_on_prem(app.component_names)
    profiles = ApiProfiler(
        telemetry, stateful_components=app.stateful_components(), traces_per_api=20
    ).profile_all()
    footprint = FootprintLearner(telemetry).learn()
    network = default_network_model()
    estimator = ResourceEstimator(app, telemetry).fit()
    estimate = estimator.predict_scaled(3.0)

    def performance(engine):
        return ApiPerformanceModel(
            traces_by_api={api: p.sample_traces for api, p in profiles.items()},
            footprint=footprint,
            network=network,
            baseline_plan=baseline,
            traces_per_api=20,
            engine=engine,
        )

    def evaluator(engine):
        return QualityEvaluator(
            performance=performance(engine),
            availability=ApiAvailabilityModel(
                {api: p.stateful_components for api, p in profiles.items()}, baseline
            ),
            cost=CloudCostModel(
                PricingCatalog(),
                estimate,
                footprint,
                {c.name: c.resources.storage_gb for c in app.components},
                baseline,
                time_compression=288.0,
            ),
            preferences=MigrationPreferences(),
            estimate=estimate,
            component_order=app.component_names,
        )

    return app, performance, evaluator


def _random_plans(app, count, seed=11):
    rng = np.random.default_rng(seed)
    names = app.component_names
    return [
        MigrationPlan.from_vector(names, [int(v) for v in rng.integers(0, 2, len(names))])
        for _ in range(count)
    ]


class TestProjectionCache:
    def test_cached_qperf_equals_uncached(self, tiny_models):
        """Plans differing only in components an API never touches share a projection;
        the cached result must equal a fresh, cache-cold computation."""
        app, performance, _evaluator = tiny_models
        cached_model = performance("compiled")
        for plan in _random_plans(app, 12):
            fresh_model = performance("compiled")  # cache-cold every time
            assert cached_model.qperf(plan) == fresh_model.qperf(plan)
            for api in cached_model.apis:
                assert cached_model.estimate_latencies(api, plan) == pytest.approx(
                    fresh_model.estimate_latencies(api, plan), abs=1e-9
                )

    def test_projection_key_ignores_untouched_components(self, tiny_models):
        app, performance, _evaluator = tiny_models
        model = performance("compiled")
        # /read never touches ServiceB: flipping it must not change the projection.
        assert "ServiceB" not in model.api_components()["/read"]
        base = MigrationPlan.all_on_prem(app.component_names)
        flipped = base.with_location("ServiceB", 1)
        assert model.projection_key("/read", base) == model.projection_key("/read", flipped)
        assert model.estimate_latencies("/read", base) == model.estimate_latencies(
            "/read", flipped
        )

    def test_engines_agree_on_qperf(self, tiny_models):
        app, performance, _evaluator = tiny_models
        compiled_model = performance("compiled")
        reference_model = performance("reference")
        for plan in _random_plans(app, 12, seed=5):
            assert compiled_model.qperf(plan) == reference_model.qperf(plan)

    def test_invalid_engine_rejected(self, tiny_models):
        _app, performance, _evaluator = tiny_models
        with pytest.raises(ValueError):
            performance("interpreted")


class TestEvaluateBatch:
    def test_matches_sequential_evaluate(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plans = _random_plans(app, 20, seed=3)
        sequential = evaluator("compiled")
        batched = evaluator("compiled")
        expected = [sequential.evaluate(plan) for plan in plans]
        got = batched.evaluate_batch(plans)
        assert [q.objectives() for q in got] == [q.objectives() for q in expected]
        assert [q.feasible for q in got] == [q.feasible for q in expected]
        assert batched.evaluations == sequential.evaluations

    def test_deduplicates_and_counts_like_evaluate(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plan = MigrationPlan.all_on_prem(app.component_names)
        batched = evaluator("compiled")
        qualities = batched.evaluate_batch([plan, plan, plan])
        assert batched.evaluations == 1
        assert qualities[0] is qualities[1] is qualities[2]
        # A second batch with the same plan is a pure cache hit.
        batched.evaluate_batch([plan])
        assert batched.evaluations == 1

    def test_evaluated_qualities_records_distinct_plans(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plans = _random_plans(app, 10, seed=9)
        batched = evaluator("compiled")
        batched.evaluate_batch(plans + plans)
        recorded = batched.evaluated_qualities()
        assert len(recorded) == batched.evaluations
        distinct = {tuple(plan.to_vector()) for plan in plans}
        assert {tuple(q.plan.to_vector()) for q in recorded} == distinct

    def test_batch_across_engines_identical(self, tiny_models):
        app, _performance, evaluator = tiny_models
        plans = _random_plans(app, 15, seed=21)
        compiled_q = evaluator("compiled").evaluate_batch(plans)
        reference_q = evaluator("reference").evaluate_batch(plans)
        assert [q.objectives() for q in compiled_q] == [q.objectives() for q in reference_q]


class TestEngineDeterminism:
    def test_fixed_seed_ga_front_is_engine_independent(self, tiny_models):
        """A fixed-seed AtlasGA run must produce the same Pareto front, evaluation
        count and generation count on either replay engine (bitwise equivalence)."""
        from repro.optimizer.atlas_ga import AtlasGA, GAConfig

        app, _performance, evaluator = tiny_models
        config = GAConfig(
            population_size=12,
            offspring_per_generation=6,
            evaluation_budget=150,
            max_generations=25,
            train_iterations=8,
            train_batch_size=2,
            train_pairs=8,
            seed=4,
        )
        results = {}
        for engine in ("compiled", "reference"):
            ga = AtlasGA(evaluator(engine), app.component_names, config=config)
            results[engine] = ga.run()
        compiled_result, reference_result = results["compiled"], results["reference"]
        assert [q.objectives() for q in compiled_result.pareto] == [
            q.objectives() for q in reference_result.pareto
        ]
        assert compiled_result.evaluations == reference_result.evaluations
        assert compiled_result.generations == reference_result.generations
