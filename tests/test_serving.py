"""Durable fleet serving: the on-disk artifact store, concurrent cache, and daemon.

Three contracts from the serving tier:

* **Store round-trip is bitwise** — ``load(save(artifact))`` reproduces compiled
  trace sets, fused programs and Δ tables bit for bit on random topologies, and
  any damaged frame (truncation, corruption, version skew) degrades to ``None``
  — a clean recompile, never an exception.
* **Single-flight concurrency** — N threads racing on one fingerprint run
  exactly one compile; the LRU bound and the hit/miss/eviction counters stay
  coherent under contention.
* **Restartability** — a fresh process over a populated store serves
  recommendations from the durable journal without searching, and a daemon
  killed after any stage checkpoint resumes to the bitwise-identical front an
  uninterrupted run produces.
"""

import copy
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fingerprints import build_tiny_evaluator
from test_artifacts import TINY_GA, _assert_bitwise, _perturb
from test_compiled import random_delays, random_trace

from repro.optimizer.atlas_ga import AtlasGA
from repro.quality import CompiledTraceSet, FusedProgram, MigrationPreferences
from repro.quality.artifacts import ArtifactCache
from repro.quality.compiled import ShmArena
from repro.recommend import AdvisorService, Atlas, AtlasConfig
from repro.serving import (
    AdvisorDaemon,
    ArtifactStore,
    MonitorSample,
    ScriptedMonitor,
)
from repro.serving.daemon import front_digest


def _random_compiled(rng):
    traces = [random_trace(rng, f"t{k}") for k in range(int(rng.integers(1, 5)))]
    edges = sorted({edge for trace in traces for edge in trace.invocation_edges()})
    return CompiledTraceSet(traces, edges)


def _random_program(rng):
    compiled_by_api = {
        f"/api{k}": _random_compiled(rng) for k in range(int(rng.integers(2, 5)))
    }
    return FusedProgram(compiled_by_api, sorted(compiled_by_api))


# -- the store itself -------------------------------------------------------------------------
class TestArtifactStore:
    def test_save_load_discard(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("compiled", "sha", 3)
        assert store.load(key) is None
        assert store.save(key, {"x": [1, 2, 3]})
        assert store.load(key) == {"x": [1, 2, 3]}
        store.discard(key)
        assert store.load(key) is None
        store.discard(key)  # idempotent

    def test_unpicklable_value_degrades_to_false(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.save(("bad",), lambda: None) is False
        assert store.load(("bad",)) is None

    def test_state_tier_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.load_state("daemon-x") is None
        assert store.save_state("daemon-x", {"version": 1, "tenants": {}})
        assert store.load_state("daemon-x") == {"version": 1, "tenants": {}}
        # Unserializable state degrades to False, never an exception.
        assert store.save_state("daemon-x", {"bad": object()}) is False

    def test_publication_is_atomic_no_temp_litter(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for i in range(8):
            store.save(("k", i), list(range(i)))
        litter = [
            p
            for p in (tmp_path / "store").rglob("*")
            if p.is_file() and p.suffix not in (".art", ".json")
        ]
        assert litter == []


# -- bitwise round-trip over random topologies ------------------------------------------------
class TestStoreRoundTripBitwise:
    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=20, deadline=None)
    def test_compiled_set_round_trips_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        compiled = _random_compiled(rng)
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            assert store.save(("c",), compiled)
            loaded = store.load(("c",))
        assert isinstance(loaded, CompiledTraceSet)
        _assert_bitwise(compiled, loaded)
        delays = random_delays(rng, list(compiled.edge_index))
        assert loaded.latencies(delays) == compiled.latencies(delays)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=15, deadline=None)
    def test_fused_program_round_trips_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        program = _random_program(rng)
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            assert store.save(("f",), program)
            loaded = store.load(("f",))
        assert isinstance(loaded, FusedProgram)
        _assert_bitwise(program, loaded)
        rows = rng.uniform(0.0, 60.0, size=(3, program.total_edges))
        assert np.array_equal(loaded.replay(rows), program.replay(rows))
        assert loaded.replay(rows).tobytes() == program.replay(rows).tobytes()

    def test_delta_table_round_trips_bitwise(self, tiny_telemetry, tmp_path):
        app, result = tiny_telemetry
        evaluator = build_tiny_evaluator(app, result.telemetry)
        model = evaluator.performance
        api = model.apis[0]
        table = model._delta_table(api, 2)
        store = ArtifactStore(tmp_path / "store")
        assert store.save(("delta", api), table)
        loaded = store.load(("delta", api))
        assert loaded[0] == table[0]
        for left, right in zip(table[1:], loaded[1:]):
            assert left.dtype == right.dtype
            assert left.tobytes() == right.tobytes()

    def test_shared_memory_artifact_reloads_as_private_and_reshareable(self):
        rng = np.random.default_rng(11)
        compiled = _random_compiled(rng)
        pristine = _random_compiled(np.random.default_rng(11))
        program = _random_program(rng)
        arena = ShmArena()
        try:
            compiled.share_memory(arena)
            program.share_memory(arena, float32=True)
            assert compiled._shm_backed and program._shm_backed
            with tempfile.TemporaryDirectory() as root:
                store = ArtifactStore(root)
                assert store.save(("c",), compiled)
                assert store.save(("f",), program)
                loaded_compiled = store.load(("c",))
                loaded_program = store.load(("f",))
        finally:
            arena.release()
        # Deserialized artifacts own private pages: flags reset, contents bitwise.
        assert loaded_compiled._shm_backed is False
        assert loaded_program._shm_backed is False
        assert loaded_program._shm_float32 is False
        _assert_bitwise(pristine, loaded_compiled)
        # ...and they are freshly shareable into a new arena.
        arena2 = ShmArena()
        try:
            loaded_compiled.share_memory(arena2)
            loaded_program.share_memory(arena2)
            assert loaded_compiled._shm_backed and loaded_program._shm_backed
        finally:
            arena2.release()


# -- damaged frames degrade, never crash ------------------------------------------------------
class TestStoreDegradation:
    def _saved(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        compiled = _random_compiled(np.random.default_rng(5))
        assert store.save(("c",), compiled)
        return store, store.path_for(("c",))

    def test_truncation_at_any_point_degrades_to_none(self, tmp_path):
        store, path = self._saved(tmp_path)
        blob = path.read_bytes()
        for cut in (0, 1, 10, len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:cut])
            assert store.load(("c",)) is None
        path.write_bytes(blob)
        assert store.load(("c",)) is not None  # sanity: the frame itself was fine

    def test_flipped_payload_byte_degrades_to_none(self, tmp_path):
        store, path = self._saved(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(("c",)) is None

    def test_version_skew_and_bad_magic_degrade_to_none(self, tmp_path):
        store, path = self._saved(tmp_path)
        blob = path.read_bytes()
        header, _, payload = blob.partition(b"\n")
        fields = header.split(b" ")
        skewed = b"atlas-store/999 " + b" ".join(fields[1:]) + b"\n" + payload
        path.write_bytes(skewed)
        assert store.load(("c",)) is None
        path.write_bytes(b"not-a-store/1 " + b" ".join(fields[1:]) + b"\n" + payload)
        assert store.load(("c",)) is None

    def test_cache_over_corrupted_store_recompiles(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        warm = ArtifactCache(store=store)
        warm.get_or_build(("k",), lambda: [1, 2, 3])
        store.path_for(("k",)).write_bytes(b"garbage")
        builds = []
        cold = ArtifactCache(store=store)
        value = cold.get_or_build(("k",), lambda: builds.append(1) or [1, 2, 3])
        assert value == [1, 2, 3]
        assert builds == [1]  # store miss -> clean recompile, not a crash
        assert cold.stats()["store_hits"] == 0

    def test_fresh_cache_over_populated_store_never_builds(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        warm = ArtifactCache(store=store)
        compiled = _random_compiled(np.random.default_rng(9))
        warm.get_or_build(("c",), lambda: compiled)
        cold = ArtifactCache(store=store)
        loaded = cold.get_or_build(
            ("c",), lambda: pytest.fail("warm restart must not rebuild")
        )
        _assert_bitwise(compiled, loaded)
        assert cold.stats()["store_hits"] == 1


# -- single-flight concurrency ----------------------------------------------------------------
class TestConcurrentCache:
    def test_single_flight_exactly_one_build_per_fingerprint(self):
        cache = ArtifactCache()
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        builds, results = [], []

        def build():
            builds.append(1)  # list.append is atomic; >1 entries means >1 builds
            threading.Event().wait(0.05)  # hold the flight open while racers pile up
            return object()

        def worker():
            barrier.wait()
            results.append(cache.get_or_build(("hot",), build))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert len(set(id(r) for r in results)) == 1
        stats = cache.stats()
        assert stats["misses"] == 1  # the claimer
        assert stats["hits"] == n_threads - 1  # every parked racer
        assert stats["entries"] == 1

    def test_failed_build_releases_the_flight(self):
        cache = ArtifactCache()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient compile failure")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get_or_build(("k",), flaky)
        assert cache.get_or_build(("k",), flaky) == "ok"  # flight was not wedged
        assert len(attempts) == 2

    def test_counters_and_lru_bound_under_contention(self):
        max_entries, n_threads, ops = 8, 8, 200
        cache = ArtifactCache(max_entries=max_entries)
        builds = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(ops):
                key = ("k", int(rng.integers(0, 32)))
                value = cache.get_or_build(key, lambda k=key: builds.append(1) or k)
                assert value == key  # never served another key's artifact

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert len(cache) <= max_entries
        assert stats["hits"] + stats["misses"] == n_threads * ops
        assert stats["misses"] == len(builds)  # every miss ran exactly one build
        assert stats["evictions"] == stats["misses"] - stats["entries"]

    def test_store_none_stats_shape_is_unchanged(self):
        cache = ArtifactCache()
        cache.get_or_build(("k",), lambda: 1)
        assert set(cache.stats()) == {"entries", "hits", "misses", "evictions"}


# -- the durable journal ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_learned_atlas(tiny_telemetry):
    """One learned Atlas over the tiny app; tests deep-copy it for isolation."""
    app, result = tiny_telemetry
    atlas = Atlas(
        app,
        MigrationPreferences.pin_on_prem(["Database"]),
        config=AtlasConfig(traces_per_api=15, ga=TINY_GA),
    )
    atlas.learn(result.telemetry)
    return atlas


def _clone(atlas):
    return copy.deepcopy(atlas)


def _poison_search(monkeypatch):
    def poisoned(self, *args, **kwargs):
        raise AssertionError("the warm path must not run a search")

    monkeypatch.setattr(AtlasGA, "run", poisoned)


class TestDurableJournal:
    def test_warm_restart_revives_without_search(
        self, tmp_path, tiny_learned_atlas, monkeypatch
    ):
        store_dir = tmp_path / "store"
        cold_service = AdvisorService(store=ArtifactStore(store_dir))
        cold = cold_service.recommend(_clone(tiny_learned_atlas), expected_scale=2.0)
        assert cold_service.stats()["journal"] == {"hits": 0, "misses": 1}

        # "New process": fresh service, fresh cache, fresh atlas — search poisoned.
        _poison_search(monkeypatch)
        warm_service = AdvisorService(store=ArtifactStore(store_dir))
        warm = warm_service.recommend(_clone(tiny_learned_atlas), expected_scale=2.0)
        assert front_digest(warm) == front_digest(cold)
        assert warm_service.stats()["journal"] == {"hits": 1, "misses": 0}

        # The revived recommendation is live: previews come from a real evaluator
        # whose compiled artifacts stream in from the store, not a recompile.
        knee = warm.knee_point().plan
        cold_preview = cold.latency_preview(knee)
        warm_preview = warm.latency_preview(knee)
        assert sorted(warm_preview) == sorted(cold_preview)
        for api, estimate in warm_preview.items():
            assert list(estimate.estimated_latencies_ms) == list(
                cold_preview[api].estimated_latencies_ms
            )
        assert warm_service.cache.stats()["store_hits"] > 0

    def test_corrupted_journal_falls_back_to_cold_search(
        self, tmp_path, tiny_learned_atlas
    ):
        store_dir = tmp_path / "store"
        service = AdvisorService(store=ArtifactStore(store_dir))
        cold = service.recommend(_clone(tiny_learned_atlas), expected_scale=2.0)
        for art in store_dir.rglob("*.art"):
            art.write_bytes(b"garbage")
        fallback_service = AdvisorService(store=ArtifactStore(store_dir))
        again = fallback_service.recommend(_clone(tiny_learned_atlas), expected_scale=2.0)
        assert fallback_service.stats()["journal"] == {"hits": 0, "misses": 1}
        assert front_digest(again) == front_digest(cold)  # determinism, not memory

    def test_storeless_service_has_no_journal_stats(self, tiny_learned_atlas):
        service = AdvisorService()
        assert "journal" not in service.stats()


# -- the continuous re-planning loop ----------------------------------------------------------
@pytest.fixture(scope="module")
def daemon_script(tiny_learned_atlas):
    """A deterministic 2-cycle monitor script: on-model, then one API drifts hard.

    Cycle 1 reports exactly the advisor's own latency preview (baselines become
    zero-divergence). Cycle 2 inflates one API's latencies 6x and supplies a
    re-profiled trace window for it — guaranteed drift on that API only, in any
    process that replays the script.
    """
    atlas = _clone(tiny_learned_atlas)
    rec = AdvisorService().recommend(atlas, expected_scale=2.0)
    knee = rec.knee_point().plan
    preview = {
        api: [float(x) for x in estimate.estimated_latencies_ms]
        for api, estimate in rec.latency_preview(knee).items()
    }
    target = sorted(preview)[0]
    drifted = {
        api: ([v * 6.0 + 25.0 for v in values] if api == target else list(values))
        for api, values in preview.items()
    }
    window = [
        _perturb(trace, 1.7)
        for trace in atlas.knowledge.api_profiles[target].sample_traces
    ]
    samples = [
        MonitorSample(recent_latencies=preview),
        MonitorSample(recent_latencies=drifted, traces_by_api={target: window}),
    ]
    return target, samples


def _make_daemon(store_dir, atlas, samples):
    service = AdvisorService(store=ArtifactStore(store_dir)) if store_dir else AdvisorService()
    daemon = AdvisorDaemon(service, ScriptedMonitor({"web": samples}), name="t")
    daemon.register("web", atlas, expected_scale=2.0)
    return daemon


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory, tiny_learned_atlas, daemon_script):
    """The uninterrupted 3-cycle run every kill-and-restart case must reproduce."""
    _, samples = daemon_script
    daemon = _make_daemon(
        tmp_path_factory.mktemp("ref-store"), _clone(tiny_learned_atlas), samples
    )
    reports = [daemon.run_cycle()[0] for _ in range(3)]
    return daemon, reports


class _Crash(RuntimeError):
    pass


class TestAdvisorDaemon:
    def test_continuous_replanning_flow(self, reference_run, daemon_script):
        daemon, (bootstrap, drift, idle) = reference_run
        target, _ = daemon_script
        # Cycle 1: no baselines yet -> poll feeds a first recommendation round.
        assert bootstrap.stages == ["poll", "recommend"]
        assert bootstrap.recommended and not bootstrap.drifted
        # Cycle 2: drift on exactly the scripted API -> splice -> re-recommend.
        assert drift.stages == ["poll", "drift", "splice", "recertify", "recommend"]
        assert drift.drifted == [target] and drift.spliced == [target]
        assert drift.recommended
        assert drift.front_sha is not None
        # Cycle 3: the script is exhausted -> idle, loop state stays 'done'.
        assert idle.idle and not idle.stages[1:]
        record = daemon.record("web")
        assert record["front_sha"] == drift.front_sha
        assert record["stage"] == "done" and record["cycle"] == 3
        assert record["executed"] is not None and record["detector"] is not None

    def test_on_model_cycle_stops_at_drift(self, tmp_path, tiny_learned_atlas, daemon_script):
        _, samples = daemon_script
        on_model = [samples[0], MonitorSample(recent_latencies=samples[0].recent_latencies)]
        daemon = _make_daemon(tmp_path / "store", _clone(tiny_learned_atlas), on_model)
        bootstrap, steady = [daemon.run_cycle()[0] for _ in range(2)]
        assert bootstrap.recommended
        assert steady.stages == ["poll", "drift"]
        assert not steady.drifted and not steady.recommended
        assert daemon.record("web")["front_sha"] == bootstrap.front_sha

    def test_storeless_daemon_still_loops(self, tiny_learned_atlas, daemon_script):
        _, samples = daemon_script
        daemon = _make_daemon(None, _clone(tiny_learned_atlas), samples)
        bootstrap = daemon.run_cycle()[0]
        assert bootstrap.recommended

    @pytest.mark.parametrize("crash_stage", ["poll", "splice", "recommend"])
    def test_kill_after_any_checkpoint_resumes_bitwise(
        self, tmp_path, tiny_learned_atlas, daemon_script, reference_run, crash_stage
    ):
        target, samples = daemon_script
        _, (_, reference, _) = reference_run
        store_dir = tmp_path / "store"
        daemon = _make_daemon(store_dir, _clone(tiny_learned_atlas), samples)
        daemon.run_cycle()  # cycle 1 bootstraps cleanly

        def bomb(tenant, stage):
            if stage == crash_stage:
                raise _Crash(stage)

        daemon._after_stage = bomb
        with pytest.raises(_Crash):
            daemon.run_cycle()  # cycle 2 dies right after the checkpoint

        # "Process restart": everything in memory is gone — new service, cache,
        # daemon and a freshly learned (cloned) atlas over the same store.
        resumed = _make_daemon(store_dir, _clone(tiny_learned_atlas), samples)
        report = resumed.run_cycle()[0]
        record = resumed.record("web")
        assert record["front_sha"] == reference.front_sha
        assert record["executed"] is not None
        if crash_stage == "recommend":
            # The cycle had completed; the resumed process just finds it done.
            assert report.idle and report.cycle == 3
        else:
            assert report.cycle == 2 and report.recommended
            assert report.front_sha == reference.front_sha
            # The resumed compile streamed the untouched APIs from the store.
            assert resumed.service.cache.stats()["store_hits"] > 0

    def test_lost_sample_abandons_cycle_without_crashing(
        self, tmp_path, tiny_learned_atlas, daemon_script
    ):
        _, samples = daemon_script
        store_dir = tmp_path / "store"
        daemon = _make_daemon(store_dir, _clone(tiny_learned_atlas), samples)
        daemon.run_cycle()

        def bomb(tenant, stage):
            if stage == "poll":
                raise _Crash(stage)

        daemon._after_stage = bomb
        with pytest.raises(_Crash):
            daemon.run_cycle()
        for art in store_dir.rglob("*.art"):  # wipe every object, keep the state tier
            art.unlink()
        resumed = _make_daemon(store_dir, _clone(tiny_learned_atlas), samples)
        report = resumed.run_cycle()[0]
        assert report.error is not None and not report.recommended
        assert resumed.record("web")["stage"] == "done"
