"""End-to-end integration tests: the full Atlas loop on the social network."""

import pytest

from repro import Atlas, MigrationPreferences
from repro.cluster import ON_PREM, MigrationPlan
from repro.optimizer import GAConfig
from repro.recommend import AtlasConfig
from repro.simulator import simulate_workload
from repro.workload import WorkloadGenerator, default_scenario


GA = GAConfig(
    population_size=24,
    offspring_per_generation=12,
    evaluation_budget=400,
    immigrants_per_generation=4,
    local_search_period=4,
    train_iterations=20,
    train_batch_size=2,
    train_pairs=12,
    seed=0,
)


@pytest.fixture(scope="module")
def social_atlas(social_learning_result):
    app, result = social_learning_result
    atlas = Atlas(
        app,
        MigrationPreferences(),
        config=AtlasConfig(traces_per_api=10, ga=GA),
    )
    atlas.learn(result.telemetry)
    peak = atlas.knowledge.estimator.predict_scaled(5.0).peak(
        "cpu_millicores", app.component_names
    )
    atlas.preferences = MigrationPreferences.pin_on_prem(
        ["UserMongoDB", "PostStorageMongoDB", "MediaMongoDB"],
        onprem_limits={"cpu_millicores": 0.8 * peak},
    )
    return app, result, atlas


class TestLearningOnSocialNetwork:
    def test_all_nine_apis_profiled(self, social_atlas):
        app, _result, atlas = social_atlas
        assert set(atlas.knowledge.api_profiles) == set(app.api_names)

    def test_footprint_accuracy_against_model(self, social_atlas):
        app, _result, atlas = social_atlas
        reference = {}
        for api in app.apis:
            reference[api.name] = {
                (src, dst): (node.payload.request_bytes, node.payload.response_bytes)
                for src, dst, node, _m in api.edges()
            }
        accuracy = atlas.knowledge.footprint.accuracy_against(reference)
        assert len(accuracy) == 9
        assert sum(accuracy.values()) / len(accuracy) > 70.0

    def test_compose_post_background_components_detected(self, social_atlas):
        _app, _result, atlas = social_atlas
        profile = atlas.knowledge.api_profiles["/composePost"]
        assert "WriteHomeTimelineService" in profile.background_components()


class TestRecommendationOnSocialNetwork:
    @pytest.fixture(scope="class")
    def recommendation(self, social_atlas):
        _app, _result, atlas = social_atlas
        return atlas.recommend(expected_scale=5.0)

    def test_produces_feasible_front(self, social_atlas, recommendation):
        app, _result, atlas = social_atlas
        assert recommendation.plans
        for quality in recommendation.plans:
            assert quality.feasible
            for pinned in atlas.preferences.pinned_placement:
                assert quality.plan[pinned] == ON_PREM

    def test_performance_plan_beats_naive_full_offload_estimate(self, social_atlas, recommendation):
        app, _result, atlas = social_atlas
        evaluator = recommendation.evaluator
        perf_plan = recommendation.performance_optimized()
        movable_cloud = MigrationPlan.all_cloud(app.component_names).with_pinned(
            atlas.preferences.pinned_placement
        )
        full_offload = evaluator.evaluate(movable_cloud)
        assert perf_plan.perf <= full_offload.perf + 1e-9

    def test_estimated_latency_matches_measured_after_migration(self, social_atlas, recommendation):
        """Figure 18's claim: the delay-injection preview tracks the measured latency."""
        app, result, atlas = social_atlas
        plan = recommendation.performance_optimized().plan
        preview = recommendation.latency_preview(plan)
        scenario = default_scenario(app, base_rps=10.0, peak_rps=18.0, duration_ms=45_000.0)
        requests = WorkloadGenerator(app, scenario, seed=11).generate(45_000.0)
        measured = simulate_workload(app, requests, plan=plan, seed=11).mean_latencies()
        checked = 0
        for api, estimate in preview.items():
            if api not in measured:
                continue
            checked += 1
            assert estimate.estimated_mean_ms == pytest.approx(measured[api], rel=0.45, abs=8.0)
        assert checked >= 5

    def test_monitoring_detects_injected_drift(self, social_atlas, recommendation):
        app, result, atlas = social_atlas
        plan = recommendation.performance_optimized().plan
        scenario = default_scenario(app, base_rps=10.0, peak_rps=18.0, duration_ms=45_000.0)
        requests = WorkloadGenerator(app, scenario, seed=13).generate(45_000.0)
        post_migration = simulate_workload(app, requests, plan=plan, seed=13)
        detector = atlas.drift_detector(recommendation, plan, post_migration.api_latencies())
        # Use the API whose post-migration estimate is tightest (the paper's premise is
        # that the baseline approximation is reasonable, so drift stands out against it).
        api = min(detector.apis, key=detector.baseline_divergence)
        stable = post_migration.api_latencies()[api]
        assert not detector.check(api, stable).drift_detected
        drifted = [latency * 3.0 + 150.0 for latency in stable]
        assert detector.check(api, drifted).drift_detected

    def test_breach_detector_flags_exfiltration(self, social_atlas):
        app, result, atlas = social_atlas
        detector = atlas.breach_detector()
        telemetry = result.telemetry
        counts = {0: {api: 50.0 for api in app.api_names}}
        pair = ("PostStorageService", "PostStorageMongoDB")
        expected = detector.expected_traffic(counts[0]).get(pair, 0.0)
        normal = {0: {pair: expected * 1.1}}
        breach = {0: {pair: expected * 5.0 + 1e7}}
        assert detector.scan(counts, normal) == []
        assert detector.scan(counts, breach)


class TestBudgetPersonalization:
    def test_budget_constraint_filters_expensive_plans(self, social_atlas):
        _app, _result, atlas = social_atlas
        unconstrained = atlas.recommend(expected_scale=5.0)
        cheapest = min(q.cost for q in unconstrained.plans)
        most_expensive = max(q.cost for q in unconstrained.plans)
        if most_expensive <= cheapest * 1.01:
            pytest.skip("front is flat in cost; budget cannot discriminate")
        budget = (cheapest + most_expensive) / 2.0
        constrained = atlas.recommend(
            expected_scale=5.0,
            preferences=atlas.preferences.with_budget(budget),
        )
        assert constrained.plans
        for quality in constrained.plans:
            assert quality.cost <= budget + 1e-6
